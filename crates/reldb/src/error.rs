//! Error type for the database substrate.

use crate::{RelationId, Value};
use std::fmt;

/// Everything that can go wrong when building schemas or mutating databases.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// Schema construction failed; payload explains why.
    Schema(String),
    /// A relation name could not be resolved.
    UnknownRelation(String),
    /// A fact id does not denote a live fact.
    UnknownFact,
    /// Fact has the wrong number of values for its relation.
    Arity {
        /// Relation the fact was destined for.
        relation: String,
        /// Expected arity.
        expected: usize,
        /// Provided arity.
        got: usize,
    },
    /// A value does not conform to its attribute's declared type.
    TypeMismatch {
        /// Relation name.
        relation: String,
        /// Attribute name.
        attribute: String,
        /// The offending value.
        value: Value,
    },
    /// A key attribute is null.
    NullInKey {
        /// Relation name.
        relation: String,
        /// Attribute name.
        attribute: String,
    },
    /// `NaN` floats are rejected (they would break value indexing).
    NanValue {
        /// Relation name.
        relation: String,
        /// Attribute name.
        attribute: String,
    },
    /// Another live fact already has this key.
    DuplicateKey {
        /// Relation name.
        relation: String,
        /// The key values of the rejected fact.
        key: Vec<Value>,
    },
    /// A non-null FK tuple references no existing fact.
    FkViolation {
        /// The referencing relation.
        from: String,
        /// The referenced relation.
        to: String,
        /// The dangling reference values.
        values: Vec<Value>,
    },
    /// Deleting this fact would leave dangling references and cascade was
    /// not requested.
    WouldDangle {
        /// Relation of the fact whose deletion was rejected.
        relation: String,
        /// Number of facts still referencing it.
        referencing: usize,
    },
    /// Relation id out of range for this schema.
    BadRelationId(RelationId),
    /// Text (de)serialisation failure.
    Parse(String),
    /// A durability hook was attached to a database whose mutation journal
    /// is disabled (`set_journal_capacity(0)`): delete records would carry
    /// no payload, making the write-ahead log non-replayable.
    JournalDisabled,
    /// Crash-recovery replay diverged from the journalled history (e.g. a
    /// replayed insert landed in a different slot than the log recorded).
    Replay(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Schema(msg) => write!(f, "schema error: {msg}"),
            DbError::UnknownRelation(name) => {
                write!(f, "unknown relation {name}")
            }
            DbError::UnknownFact => write!(f, "fact id does not denote a live fact"),
            DbError::Arity { relation, expected, got } => write!(
                f,
                "arity mismatch for {relation}: expected {expected} values, got {got}"
            ),
            DbError::TypeMismatch { relation, attribute, value } => write!(
                f,
                "type mismatch: value {value} is not valid for {relation}.{attribute}"
            ),
            DbError::NullInKey { relation, attribute } => {
                write!(f, "null in key attribute {relation}.{attribute}")
            }
            DbError::NanValue { relation, attribute } => {
                write!(f, "NaN value rejected for {relation}.{attribute}")
            }
            DbError::DuplicateKey { relation, key } => {
                let parts: Vec<String> = key.iter().map(std::string::ToString::to_string).collect();
                write!(f, "duplicate key ({}) in {relation}", parts.join(", "))
            }
            DbError::FkViolation { from, to, values } => {
                let parts: Vec<String> =
                    values.iter().map(std::string::ToString::to_string).collect();
                write!(
                    f,
                    "foreign-key violation: {from} references {to} with ({}) but no such fact exists",
                    parts.join(", ")
                )
            }
            DbError::WouldDangle { relation, referencing } => write!(
                f,
                "deleting this {relation} fact would dangle {referencing} reference(s); use cascade deletion"
            ),
            DbError::BadRelationId(id) => {
                write!(f, "relation id {:?} out of range", id)
            }
            DbError::Parse(msg) => write!(f, "parse error: {msg}"),
            DbError::JournalDisabled => write!(
                f,
                "durability hook refused: the mutation journal is disabled (capacity 0)"
            ),
            DbError::Replay(msg) => write!(f, "replay divergence: {msg}"),
        }
    }
}

impl std::error::Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DbError::Arity {
            relation: "R".into(),
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains("expected 3"));
        let e = DbError::DuplicateKey {
            relation: "R".into(),
            key: vec![Value::Int(1), Value::Text("x".into())],
        };
        assert!(e.to_string().contains("(1, x)"));
        let e = DbError::FkViolation {
            from: "R".into(),
            to: "S".into(),
            values: vec![Value::Text("s9".into())],
        };
        assert!(e.to_string().contains("no such fact"));
    }
}
