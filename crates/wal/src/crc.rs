//! CRC-32 (IEEE 802.3, the zlib/PNG polynomial) — table-driven,
//! byte-at-a-time.
//!
//! Every WAL frame and snapshot section carries a CRC over its payload so
//! torn tails and bit rot are *detected* rather than decoded into garbage.
//! The polynomial choice is unremarkable on purpose: the guarantee the
//! recovery path needs is only "a random corruption is overwhelmingly
//! unlikely to keep the checksum valid", and CRC-32's 2⁻³² miss rate
//! (exact detection of all burst errors ≤ 32 bits) is plenty at frame
//! sizes of a few hundred bytes. The table is computed once at first use.

use std::sync::OnceLock;

/// Reflected CRC-32 table for the IEEE polynomial `0xEDB88320`.
fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        table
    })
}

/// CRC-32 of `bytes` (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF` — the
/// standard reflected IEEE variant, matching zlib's `crc32`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = table();
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ u32::MAX
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Canonical check value of CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"frame payload with some entropy 0123456789".to_vec();
        let reference = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(
                    crc32(&flipped),
                    reference,
                    "flip at {byte}:{bit} undetected"
                );
            }
        }
    }
}
