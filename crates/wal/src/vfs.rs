//! The injectable I/O layer under the WAL and snapshots.
//!
//! Everything the durability subsystem does to stable storage goes
//! through the [`Vfs`] trait — append, fsync, rename, remove, directory
//! sync — so the whole subsystem can run against either real files
//! ([`StdVfs`]) or the deterministic in-memory simulator ([`SimVfs`])
//! that powers the fault-injection suite.
//!
//! ## The simulator's crash model
//!
//! [`SimVfs`] keeps **two** filesystem images:
//!
//! * the **live** image — what the running process observes; every write
//!   lands here immediately;
//! * the **durable** image — what would survive a power cut. File *data*
//!   becomes durable only at [`WalFile::sync`]; *namespace* operations
//!   (rename, remove) become durable only at [`Vfs::sync_dir`], matching
//!   the POSIX reality that a rename is a directory mutation needing its
//!   own fsync.
//!
//! [`SimVfs::crash`] discards the live image and restarts the "process"
//! from the durable one — exactly a kill -9. [`FailPoint`]s schedule that
//! crash at a precise I/O operation (counted across the whole VFS), can
//! tear the triggering append (short write), and can flip durable bytes
//! to model media corruption. After a fail point fires, every further
//! operation fails with [`WalError::Crashed`] (a dead process does no
//! I/O) until `crash()` begins the next incarnation — so a test can kill
//! the pipeline at operation *k*, recover, and assert byte-equality, for
//! every *k*.

use crate::{Result, WalError};
use std::collections::BTreeMap;
use std::io::{Read, Seek, Write};
use std::sync::{Arc, Mutex};

/// One open append-only file.
pub trait WalFile: Send + std::fmt::Debug {
    /// Append bytes at the end of the file.
    fn append(&mut self, bytes: &[u8]) -> Result<()>;
    /// Make the file's *content* durable (fsync).
    fn sync(&mut self) -> Result<()>;
    /// Current file length in bytes.
    fn len(&self) -> Result<u64>;
    /// Whether the file is empty.
    fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }
}

/// Filesystem abstraction for the durability layer. Paths are plain
/// `/`-separated strings; implementations resolve them however they like.
pub trait Vfs: Send + Sync + std::fmt::Debug {
    /// Open for appending, creating the file if absent.
    fn open_append(&self, path: &str) -> Result<Box<dyn WalFile>>;
    /// Create (or truncate) a file.
    fn create(&self, path: &str) -> Result<Box<dyn WalFile>>;
    /// Read a whole file.
    fn read(&self, path: &str) -> Result<Vec<u8>>;
    /// Whether the file exists.
    fn exists(&self, path: &str) -> bool;
    /// Names (not paths) of the files directly inside `dir`, sorted.
    fn list(&self, dir: &str) -> Result<Vec<String>>;
    /// Rename a file (both paths inside the same directory).
    fn rename(&self, from: &str, to: &str) -> Result<()>;
    /// Remove a file.
    fn remove(&self, path: &str) -> Result<()>;
    /// Truncate a file to `len` bytes (torn-tail repair on open).
    fn truncate(&self, path: &str, len: u64) -> Result<()>;
    /// Create a directory (and parents).
    fn create_dir_all(&self, dir: &str) -> Result<()>;
    /// Make `dir`'s namespace mutations (renames, removes, creations)
    /// durable.
    fn sync_dir(&self, dir: &str) -> Result<()>;
}

/// Join a directory and a file name.
pub fn join(dir: &str, name: &str) -> String {
    if dir.is_empty() {
        name.to_string()
    } else {
        format!("{}/{name}", dir.trim_end_matches('/'))
    }
}

// ---------------------------------------------------------------------
// Real filesystem
// ---------------------------------------------------------------------

/// [`Vfs`] over `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdVfs;

#[derive(Debug)]
struct StdFile {
    file: std::fs::File,
}

impl WalFile for StdFile {
    fn append(&mut self, bytes: &[u8]) -> Result<()> {
        self.file.write_all(bytes)?;
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    fn len(&self) -> Result<u64> {
        Ok(self.file.metadata()?.len())
    }
}

impl Vfs for StdVfs {
    fn open_append(&self, path: &str) -> Result<Box<dyn WalFile>> {
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(path)?;
        file.seek(std::io::SeekFrom::End(0))?;
        Ok(Box::new(StdFile { file }))
    }

    fn create(&self, path: &str) -> Result<Box<dyn WalFile>> {
        let file = std::fs::File::create(path)?;
        Ok(Box::new(StdFile { file }))
    }

    fn read(&self, path: &str) -> Result<Vec<u8>> {
        let mut buf = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn exists(&self, path: &str) -> bool {
        std::path::Path::new(path).exists()
    }

    fn list(&self, dir: &str) -> Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort_unstable();
        Ok(names)
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        std::fs::rename(from, to)?;
        Ok(())
    }

    fn remove(&self, path: &str) -> Result<()> {
        std::fs::remove_file(path)?;
        Ok(())
    }

    fn truncate(&self, path: &str, len: u64) -> Result<()> {
        let file = std::fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(len)?;
        file.sync_data()?;
        Ok(())
    }

    fn create_dir_all(&self, dir: &str) -> Result<()> {
        std::fs::create_dir_all(dir)?;
        Ok(())
    }

    fn sync_dir(&self, dir: &str) -> Result<()> {
        // Directory fsync is how POSIX makes renames durable; on platforms
        // where opening a directory for read fails, the rename is the best
        // we can do.
        if let Ok(file) = std::fs::File::open(dir) {
            let _ = file.sync_all();
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Fault-injecting simulator
// ---------------------------------------------------------------------

/// Where (and how) the next simulated crash happens. Operations are
/// numbered from 0 in the order they reach the VFS — counting *all*
/// mutating calls: appends, syncs, renames, removes, truncates, dir
/// syncs. A dry run with no fail point yields the op count to sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailPoint {
    /// Die *before* op `k` takes any effect — e.g. crash before the fsync
    /// that would have made the tail durable.
    CrashBeforeOp(u64),
    /// Die right *after* op `k` completed — e.g. crash after fsync, or
    /// after the rename landed in the live image but before the directory
    /// sync makes it durable.
    CrashAfterOp(u64),
    /// If op `k` is an append: write only `keep` bytes of it into the
    /// live image, then die (a torn/short write). For non-append ops this
    /// behaves like [`FailPoint::CrashBeforeOp`].
    ShortWrite {
        /// The operation to tear.
        op: u64,
        /// Bytes of the append that make it to the live image.
        keep: usize,
    },
}

impl FailPoint {
    fn op(&self) -> u64 {
        match *self {
            FailPoint::CrashBeforeOp(k)
            | FailPoint::CrashAfterOp(k)
            | FailPoint::ShortWrite { op: k, .. } => k,
        }
    }
}

/// A namespace mutation not yet made durable by a directory sync.
#[derive(Debug, Clone)]
enum NsOp {
    Rename { from: String, to: String },
    Remove { path: String },
}

impl NsOp {
    fn touches(&self, dir_prefix: &str) -> bool {
        match self {
            NsOp::Rename { from, to } => from.starts_with(dir_prefix) || to.starts_with(dir_prefix),
            NsOp::Remove { path } => path.starts_with(dir_prefix),
        }
    }
}

#[derive(Debug, Default)]
struct SimState {
    /// What the running process sees.
    live: BTreeMap<String, Vec<u8>>,
    /// What survives a crash. Namespace ops (rename/remove) reach this
    /// map only via `sync_dir`; file data only via `sync`.
    durable: BTreeMap<String, Vec<u8>>,
    /// Renames/removes applied to `live` but not yet to `durable`.
    pending_ns: Vec<NsOp>,
    ops: u64,
    fail: Option<FailPoint>,
    /// Set once a fail point fired; every op fails until `crash()`.
    dead: bool,
    /// Fsyncs observed (stats for the overhead report).
    syncs: u64,
    /// Bytes appended (stats).
    bytes_appended: u64,
}

impl SimState {
    /// Gate an operation: count it, fire the fail point. Returns what the
    /// op must do: `Proceed` (and whether to die after), or an error.
    fn gate(&mut self) -> Result<Gate> {
        if self.dead {
            return Err(WalError::Crashed);
        }
        let op = self.ops;
        self.ops += 1;
        match self.fail {
            Some(fp) if fp.op() == op => match fp {
                FailPoint::CrashBeforeOp(_) => {
                    self.dead = true;
                    Err(WalError::Crashed)
                }
                FailPoint::CrashAfterOp(_) => Ok(Gate::ProceedThenDie),
                FailPoint::ShortWrite { keep, .. } => Ok(Gate::Tear(keep)),
            },
            _ => Ok(Gate::Proceed),
        }
    }
}

enum Gate {
    Proceed,
    ProceedThenDie,
    /// Append only this many bytes, then die.
    Tear(usize),
}

/// Deterministic in-memory filesystem with scheduled crashes. Cloning
/// shares the underlying state (it is the same "machine").
#[derive(Debug, Clone, Default)]
pub struct SimVfs {
    state: Arc<Mutex<SimState>>,
}

impl SimVfs {
    /// Fresh empty filesystem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lock the shared machine image.
    ///
    /// # Panics
    ///
    /// Propagates mutex poisoning. A panic while holding the image lock
    /// leaves the simulated machine half-written; under the durability
    /// layer's poisoned-hook discipline that is process death, and every
    /// accessor dying with it is exactly the semantics the fault-injection
    /// sweeps rely on.
    fn lock_state(&self) -> std::sync::MutexGuard<'_, SimState> {
        self.state.lock().expect("sim state poisoned by panic")
    }

    /// Schedule a fail point for this incarnation.
    pub fn set_fail_point(&self, fp: FailPoint) {
        self.lock_state().fail = Some(fp);
    }

    /// Total mutating operations observed so far (dry-run sweep bound).
    pub fn op_count(&self) -> u64 {
        self.lock_state().ops
    }

    /// Whether a scheduled fail point has fired.
    pub fn is_dead(&self) -> bool {
        self.lock_state().dead
    }

    /// Fsync count (file and dir syncs).
    pub fn sync_count(&self) -> u64 {
        self.lock_state().syncs
    }

    /// Total bytes appended across all files.
    pub fn bytes_appended(&self) -> u64 {
        self.lock_state().bytes_appended
    }

    /// Power-cycle: discard the live image, restart from the durable one,
    /// clear the fail point. The next incarnation starts counting ops
    /// where the previous one stopped (op numbers stay unique per
    /// machine-lifetime, so sweeps can schedule points past recovery).
    pub fn crash(&self) {
        let mut st = self.lock_state();
        st.live = st.durable.clone();
        st.pending_ns.clear();
        st.fail = None;
        st.dead = false;
    }

    /// Flip one bit of a file in the **durable** image (media corruption
    /// surfacing after the next crash). No-op if the file or offset does
    /// not exist; returns whether a bit was flipped.
    pub fn corrupt_durable(&self, path: &str, offset: usize, bit: u8) -> bool {
        let mut st = self.lock_state();
        match st.durable.get_mut(path) {
            Some(bytes) if offset < bytes.len() => {
                bytes[offset] ^= 1 << (bit % 8);
                true
            }
            _ => false,
        }
    }

    /// Truncate a file in the **durable** image (torn tail at the block
    /// layer). Returns whether the file existed.
    pub fn truncate_durable(&self, path: &str, len: usize) -> bool {
        let mut st = self.lock_state();
        match st.durable.get_mut(path) {
            Some(bytes) => {
                bytes.truncate(len);
                true
            }
            None => false,
        }
    }

    /// Size of a durable file, if present.
    pub fn durable_len(&self, path: &str) -> Option<usize> {
        self.lock_state().durable.get(path).map(Vec::len)
    }

    /// Paths present in the durable image (diagnostics).
    pub fn durable_paths(&self) -> Vec<String> {
        self.lock_state().durable.keys().cloned().collect()
    }
}

#[derive(Debug)]
struct SimFile {
    vfs: SimVfs,
    path: String,
}

impl WalFile for SimFile {
    fn append(&mut self, bytes: &[u8]) -> Result<()> {
        let mut st = self.vfs.lock_state();
        let gate = st.gate()?;
        let keep = match gate {
            Gate::Proceed | Gate::ProceedThenDie => bytes.len(),
            Gate::Tear(keep) => keep.min(bytes.len()),
        };
        st.bytes_appended += keep as u64;
        st.live
            .entry(self.path.clone())
            .or_default()
            .extend_from_slice(&bytes[..keep]);
        match gate {
            Gate::Proceed => Ok(()),
            Gate::ProceedThenDie | Gate::Tear(_) => {
                st.dead = true;
                Err(WalError::Crashed)
            }
        }
    }

    fn sync(&mut self) -> Result<()> {
        let mut st = self.vfs.lock_state();
        let gate = st.gate()?;
        if !matches!(gate, Gate::Tear(_)) {
            st.syncs += 1;
            if let Some(content) = st.live.get(&self.path).cloned() {
                st.durable.insert(self.path.clone(), content);
            }
        }
        match gate {
            Gate::Proceed => Ok(()),
            Gate::ProceedThenDie => {
                st.dead = true;
                Err(WalError::Crashed)
            }
            Gate::Tear(_) => {
                st.dead = true;
                Err(WalError::Crashed)
            }
        }
    }

    fn len(&self) -> Result<u64> {
        let st = self.vfs.lock_state();
        if st.dead {
            return Err(WalError::Crashed);
        }
        Ok(st.live.get(&self.path).map_or(0, |b| b.len() as u64))
    }
}

impl Vfs for SimVfs {
    fn open_append(&self, path: &str) -> Result<Box<dyn WalFile>> {
        let mut st = self.lock_state();
        if st.dead {
            return Err(WalError::Crashed);
        }
        st.live.entry(path.to_string()).or_default();
        drop(st);
        Ok(Box::new(SimFile {
            vfs: self.clone(),
            path: path.to_string(),
        }))
    }

    fn create(&self, path: &str) -> Result<Box<dyn WalFile>> {
        let mut st = self.lock_state();
        if st.dead {
            return Err(WalError::Crashed);
        }
        st.live.insert(path.to_string(), Vec::new());
        drop(st);
        Ok(Box::new(SimFile {
            vfs: self.clone(),
            path: path.to_string(),
        }))
    }

    fn read(&self, path: &str) -> Result<Vec<u8>> {
        let st = self.lock_state();
        if st.dead {
            return Err(WalError::Crashed);
        }
        st.live
            .get(path)
            .cloned()
            .ok_or_else(|| WalError::Io(format!("no such file: {path}")))
    }

    fn exists(&self, path: &str) -> bool {
        self.lock_state().live.contains_key(path)
    }

    fn list(&self, dir: &str) -> Result<Vec<String>> {
        let st = self.lock_state();
        if st.dead {
            return Err(WalError::Crashed);
        }
        let prefix = format!("{}/", dir.trim_end_matches('/'));
        Ok(st
            .live
            .keys()
            .filter_map(|p| p.strip_prefix(&prefix))
            .filter(|rest| !rest.contains('/'))
            .map(str::to_string)
            .collect())
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        let mut st = self.lock_state();
        let gate = st.gate()?;
        let content = st
            .live
            .remove(from)
            .ok_or_else(|| WalError::Io(format!("no such file: {from}")))?;
        st.live.insert(to.to_string(), content);
        // Durability of the new *name* waits for `sync_dir`; until then
        // the durable image keeps the pre-rename state (crashing here
        // must surface the old name with the old content).
        st.pending_ns.push(NsOp::Rename {
            from: from.to_string(),
            to: to.to_string(),
        });
        match gate {
            Gate::Proceed => Ok(()),
            Gate::ProceedThenDie | Gate::Tear(_) => {
                st.dead = true;
                Err(WalError::Crashed)
            }
        }
    }

    fn remove(&self, path: &str) -> Result<()> {
        let mut st = self.lock_state();
        let gate = st.gate()?;
        st.live.remove(path);
        st.pending_ns.push(NsOp::Remove {
            path: path.to_string(),
        });
        match gate {
            Gate::Proceed => Ok(()),
            Gate::ProceedThenDie | Gate::Tear(_) => {
                st.dead = true;
                Err(WalError::Crashed)
            }
        }
    }

    fn truncate(&self, path: &str, len: u64) -> Result<()> {
        let mut st = self.lock_state();
        let gate = st.gate()?;
        if let Some(bytes) = st.live.get_mut(path) {
            bytes.truncate(len as usize);
        }
        // Torn-tail repair is immediately made durable (the repairing
        // process fsyncs right after truncating).
        if let Some(content) = st.live.get(path).cloned() {
            if st.durable.contains_key(path) {
                st.durable.insert(path.to_string(), content);
            }
        }
        match gate {
            Gate::Proceed => Ok(()),
            Gate::ProceedThenDie | Gate::Tear(_) => {
                st.dead = true;
                Err(WalError::Crashed)
            }
        }
    }

    fn create_dir_all(&self, _dir: &str) -> Result<()> {
        if self.lock_state().dead {
            return Err(WalError::Crashed);
        }
        Ok(())
    }

    fn sync_dir(&self, dir: &str) -> Result<()> {
        let mut st = self.lock_state();
        let gate = st.gate()?;
        if !matches!(gate, Gate::Tear(_)) {
            st.syncs += 1;
            // Replay the directory's pending namespace ops against the
            // durable image, in the order they were issued. A rename
            // moves whatever content was durable under the old name (if
            // the data was never fsynced there is nothing to move — the
            // name appears durable only once its data does); a remove
            // drops the durable entry.
            let prefix = format!("{}/", dir.trim_end_matches('/'));
            let mut remaining = Vec::new();
            for op in std::mem::take(&mut st.pending_ns) {
                if !op.touches(&prefix) {
                    remaining.push(op);
                    continue;
                }
                match op {
                    NsOp::Rename { from, to } => {
                        if let Some(content) = st.durable.remove(&from) {
                            st.durable.insert(to, content);
                        }
                    }
                    NsOp::Remove { path } => {
                        st.durable.remove(&path);
                    }
                }
            }
            st.pending_ns = remaining;
        }
        match gate {
            Gate::Proceed => Ok(()),
            Gate::ProceedThenDie | Gate::Tear(_) => {
                st.dead = true;
                Err(WalError::Crashed)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_vfs_append_sync_read_round_trip() {
        let vfs = SimVfs::new();
        vfs.create_dir_all("d").unwrap();
        let mut f = vfs.create("d/a").unwrap();
        f.append(b"hello ").unwrap();
        f.append(b"world").unwrap();
        f.sync().unwrap();
        assert_eq!(vfs.read("d/a").unwrap(), b"hello world");
        assert_eq!(f.len().unwrap(), 11);
        assert_eq!(vfs.list("d").unwrap(), vec!["a".to_string()]);
    }

    #[test]
    fn unsynced_data_does_not_survive_a_crash() {
        let vfs = SimVfs::new();
        let mut f = vfs.create("d/a").unwrap();
        f.append(b"durable").unwrap();
        f.sync().unwrap();
        f.append(b" volatile").unwrap();
        vfs.crash();
        assert_eq!(vfs.read("d/a").unwrap(), b"durable");
    }

    #[test]
    fn rename_is_durable_only_after_sync_dir() {
        let vfs = SimVfs::new();
        let mut f = vfs.create("d/tmp").unwrap();
        f.append(b"snapshot").unwrap();
        f.sync().unwrap();
        drop(f);
        vfs.rename("d/tmp", "d/final").unwrap();
        // Crash before the directory sync: the rename is lost.
        vfs.crash();
        assert!(vfs.exists("d/tmp"));
        assert!(!vfs.exists("d/final"));
        // Redo with the dir sync: the rename survives.
        vfs.rename("d/tmp", "d/final").unwrap();
        vfs.sync_dir("d").unwrap();
        vfs.crash();
        assert!(!vfs.exists("d/tmp"));
        assert_eq!(vfs.read("d/final").unwrap(), b"snapshot");
    }

    #[test]
    fn fail_points_kill_the_process_stickily() {
        let vfs = SimVfs::new();
        let mut f = vfs.create("d/a").unwrap();
        f.append(b"one").unwrap(); // op 0
        vfs.set_fail_point(FailPoint::CrashBeforeOp(1));
        assert_eq!(f.append(b"two").unwrap_err(), WalError::Crashed);
        // Dead until the next incarnation.
        assert_eq!(f.append(b"three").unwrap_err(), WalError::Crashed);
        assert_eq!(vfs.read("d/a").unwrap_err(), WalError::Crashed);
        vfs.crash();
        // Nothing was synced, so the durable image is empty.
        assert!(!vfs.exists("d/a"));
    }

    #[test]
    fn short_write_tears_the_append() {
        let vfs = SimVfs::new();
        let mut f = vfs.create("d/a").unwrap();
        f.append(b"intact|").unwrap();
        f.sync().unwrap();
        vfs.set_fail_point(FailPoint::ShortWrite { op: 2, keep: 3 });
        assert_eq!(f.append(b"torn-frame").unwrap_err(), WalError::Crashed);
        vfs.crash();
        // The tear landed in the live image only; durable has the synced
        // prefix. (A tear *after* a sync is exercised via truncate_durable.)
        assert_eq!(vfs.read("d/a").unwrap(), b"intact|");
        assert!(vfs.truncate_durable("d/a", 3));
        vfs.crash();
        assert_eq!(vfs.read("d/a").unwrap(), b"int");
    }

    #[test]
    fn crash_after_op_completes_the_op_first() {
        let vfs = SimVfs::new();
        let mut f = vfs.create("d/a").unwrap();
        f.append(b"payload").unwrap(); // op 0
        vfs.set_fail_point(FailPoint::CrashAfterOp(1));
        assert_eq!(f.sync().unwrap_err(), WalError::Crashed); // op 1: fsync lands
        vfs.crash();
        assert_eq!(vfs.read("d/a").unwrap(), b"payload");
    }

    #[test]
    fn corrupt_durable_flips_one_bit() {
        let vfs = SimVfs::new();
        let mut f = vfs.create("d/a").unwrap();
        f.append(&[0u8; 4]).unwrap();
        f.sync().unwrap();
        assert!(vfs.corrupt_durable("d/a", 2, 0));
        vfs.crash();
        assert_eq!(vfs.read("d/a").unwrap(), vec![0, 0, 1, 0]);
        assert!(!vfs.corrupt_durable("d/a", 99, 0));
    }
}
