//! The segmented append-only log: writer with fsync batching, torn-tail
//! repair on open, segment rotation at snapshots, and the multi-segment
//! tail reader.
//!
//! A WAL directory holds segments `wal-<base>.log` where `<base>` is the
//! LSN of the first frame the segment may contain. The writer appends to
//! the highest-based segment; a snapshot at LSN `S` rotates to
//! `wal-<S+1>.log` and deletes the older segments — but only *after* the
//! snapshot is durably committed, so every LSN any surviving snapshot
//! might need is always on disk (see `DURABILITY.md` for the invariant).
//!
//! **Fsync batching**: `sync_every = n` fsyncs once per `n` appended
//! frames (plus on explicit [`WalWriter::sync`]). A crash can lose at
//! most the unsynced suffix — which recovery then truncates as a torn
//! tail; what it can never do is lose a *synced* frame or resurrect half
//! of one.

use crate::frame::{scan, Frame, FramePayload, SEGMENT_MAGIC};
use crate::vfs::{join, Vfs, WalFile};
use crate::{Result, WalError};
use std::sync::Arc;

/// Name of the segment whose first frame is `base_lsn`.
pub fn segment_name(base_lsn: u64) -> String {
    format!("wal-{base_lsn:016}.log")
}

/// Parse a segment file name back into its base LSN.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    if digits.len() != 16 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Sorted `(base_lsn, name)` of the segments in `dir`.
fn segments(vfs: &dyn Vfs, dir: &str) -> Result<Vec<(u64, String)>> {
    let mut out: Vec<(u64, String)> = vfs
        .list(dir)?
        .into_iter()
        .filter_map(|name| parse_segment_name(&name).map(|base| (base, name)))
        .collect();
    out.sort_unstable();
    Ok(out)
}

/// Write-side counters (the durability-overhead numbers `profile_extend`
/// reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalWriterStats {
    /// Frames appended.
    pub frames: u64,
    /// Encoded bytes appended (framing included).
    pub bytes: u64,
    /// File fsyncs issued by the writer.
    pub fsyncs: u64,
}

/// Appender over the current tail segment.
#[derive(Debug)]
pub struct WalWriter {
    vfs: Arc<dyn Vfs>,
    dir: String,
    file: Box<dyn WalFile>,
    /// LSN the next appended frame receives.
    next_lsn: u64,
    /// Frames per fsync (≥ 1).
    sync_every: usize,
    /// Frames appended since the last fsync.
    unsynced: usize,
    stats: WalWriterStats,
}

impl WalWriter {
    /// Open the log in `dir`, creating it if absent and truncating any
    /// torn tail of the newest segment. `resume_from` seeds the LSN
    /// sequence when the directory has no segments yet (a fresh log after
    /// recovery resumes at the recovered LSN + 1; pass 0 for a brand-new
    /// pipeline).
    pub fn open(vfs: Arc<dyn Vfs>, dir: &str, sync_every: usize, resume_from: u64) -> Result<Self> {
        vfs.create_dir_all(dir)?;
        let segs = segments(vfs.as_ref(), dir)?;
        let (base, name) = match segs.last() {
            Some((base, name)) => (*base, name.clone()),
            None => {
                // Fresh log: create the first segment and make both its
                // magic and its directory entry durable before any frame.
                let base = resume_from + 1;
                let name = segment_name(base);
                let path = join(dir, &name);
                let mut file = vfs.create(&path)?;
                file.append(SEGMENT_MAGIC)?;
                file.sync()?;
                vfs.sync_dir(dir)?;
                return Ok(WalWriter {
                    vfs,
                    dir: dir.to_string(),
                    file,
                    next_lsn: base,
                    sync_every: sync_every.max(1),
                    unsynced: 0,
                    stats: WalWriterStats::default(),
                });
            }
        };
        let path = join(dir, &name);
        let bytes = vfs.read(&path)?;
        let scanned = scan(&bytes);
        let next_lsn = scanned.frames.last().map_or(base, |f| f.lsn + 1);
        if scanned.valid_len == 0 {
            // Torn before the magic completed: rewrite the header.
            vfs.truncate(&path, 0)?;
            let mut file = vfs.open_append(&path)?;
            file.append(SEGMENT_MAGIC)?;
            file.sync()?;
        } else if (scanned.valid_len as usize) < bytes.len() {
            // Torn tail: drop the incomplete suffix.
            vfs.truncate(&path, scanned.valid_len)?;
        }
        let file = vfs.open_append(&path)?;
        Ok(WalWriter {
            vfs,
            dir: dir.to_string(),
            file,
            next_lsn,
            sync_every: sync_every.max(1),
            unsynced: 0,
            stats: WalWriterStats::default(),
        })
    }

    /// LSN the next frame will receive.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// LSN of the last appended frame (0 if none ever).
    pub fn last_lsn(&self) -> u64 {
        self.next_lsn - 1
    }

    /// Write-side counters.
    pub fn stats(&self) -> WalWriterStats {
        self.stats
    }

    /// Append one frame, assigning it the next LSN; fsyncs when the batch
    /// is full. Returns the assigned LSN.
    pub fn append(&mut self, payload: FramePayload) -> Result<u64> {
        let frame = Frame {
            lsn: self.next_lsn,
            payload,
        };
        let bytes = frame.encode();
        self.file.append(&bytes)?;
        self.next_lsn += 1;
        self.stats.frames += 1;
        self.stats.bytes += bytes.len() as u64;
        self.unsynced += 1;
        if self.unsynced >= self.sync_every {
            self.sync()?;
        }
        Ok(frame.lsn)
    }

    /// Force the appended frames durable.
    pub fn sync(&mut self) -> Result<()> {
        if self.unsynced > 0 {
            self.file.sync()?;
            self.stats.fsyncs += 1;
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Rotate after a snapshot at `snapshot_lsn` (which must cover every
    /// frame written so far): start segment `wal-<snapshot_lsn+1>`, make
    /// it durable, then delete the older segments. Must be called only
    /// once the snapshot itself is durably committed — the deleted
    /// segments are unreadable afterwards.
    pub fn rotate(&mut self, snapshot_lsn: u64) -> Result<()> {
        if snapshot_lsn + 1 != self.next_lsn {
            return Err(WalError::Corrupt(format!(
                "rotate at lsn {snapshot_lsn} but the log is at {}",
                self.next_lsn - 1
            )));
        }
        self.sync()?;
        let name = segment_name(self.next_lsn);
        let path = join(&self.dir, &name);
        let mut file = self.vfs.create(&path)?;
        file.append(SEGMENT_MAGIC)?;
        file.sync()?;
        self.vfs.sync_dir(&self.dir)?;
        self.file = file;
        // The snapshot supersedes everything up to snapshot_lsn; older
        // segments only hold frames ≤ snapshot_lsn (rotation always
        // happens right after the snapshot, before any new frame).
        for (base, old) in segments(self.vfs.as_ref(), &self.dir)? {
            if base <= snapshot_lsn {
                self.vfs.remove(&join(&self.dir, &old))?;
            }
        }
        self.vfs.sync_dir(&self.dir)?;
        Ok(())
    }
}

/// Read every intact frame with `lsn > since_lsn` across all segments of
/// `dir`, in LSN order.
///
/// A torn or corrupt tail is tolerated only in the **newest** segment
/// (that is the expected shape of a crash); corruption in an older
/// segment, or a gap in the LSN sequence, means frames a snapshot may
/// depend on are gone and recovery must fail loudly rather than replay a
/// hole.
pub fn read_wal_tail(vfs: &dyn Vfs, dir: &str, since_lsn: u64) -> Result<Vec<Frame>> {
    let segs = segments(vfs, dir)?;
    let mut frames: Vec<Frame> = Vec::new();
    let last_index = segs.len().saturating_sub(1);
    for (i, (base, name)) in segs.iter().enumerate() {
        let bytes = vfs.read(&join(dir, name))?;
        let scanned = scan(&bytes);
        if let Some(err) = scanned.tail_error {
            if i != last_index {
                return Err(WalError::Corrupt(format!(
                    "segment {name} is corrupt mid-log: {err}"
                )));
            }
        }
        for frame in scanned.frames {
            if frame.lsn < *base {
                return Err(WalError::Corrupt(format!(
                    "segment {name} contains lsn {} below its base {base}",
                    frame.lsn
                )));
            }
            if let Some(prev) = frames.last() {
                if frame.lsn != prev.lsn + 1 {
                    return Err(WalError::Corrupt(format!(
                        "lsn gap: {} follows {}",
                        frame.lsn, prev.lsn
                    )));
                }
            }
            frames.push(frame);
        }
    }
    frames.retain(|f| f.lsn > since_lsn);
    Ok(frames)
}

/// Convenience for logging a mutation (the [`crate::WalHook`] call path).
pub fn mutation_payload(record: &reldb::MutationRecord, payload: &reldb::Fact) -> FramePayload {
    FramePayload::Mutation {
        kind: record.kind,
        id: record.fact,
        epoch: record.epoch,
        fact: payload.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::SimVfs;
    use reldb::{Fact, FactId, MutationKind, RelationId, Value};

    fn payload(i: i64) -> FramePayload {
        FramePayload::Mutation {
            kind: MutationKind::Insert,
            id: FactId::new(RelationId(0), i as u32),
            epoch: i as u64,
            fact: Fact::new(vec![Value::Int(i)]),
        }
    }

    #[test]
    fn appends_assign_consecutive_lsns_and_batch_fsyncs() {
        let vfs = Arc::new(SimVfs::new());
        let mut wal = WalWriter::open(vfs.clone(), "w", 4, 0).unwrap();
        for i in 0..10 {
            assert_eq!(wal.append(payload(i)).unwrap(), i as u64 + 1);
        }
        // 10 frames at sync_every=4: two batch fsyncs (frames 4 and 8).
        assert_eq!(wal.stats().fsyncs, 2);
        wal.sync().unwrap();
        assert_eq!(wal.stats().fsyncs, 3);
        let tail = read_wal_tail(vfs.as_ref(), "w", 0).unwrap();
        assert_eq!(tail.len(), 10);
        assert_eq!(tail.first().unwrap().lsn, 1);
        assert_eq!(tail.last().unwrap().lsn, 10);
        // Tail reads respect the cursor.
        assert_eq!(read_wal_tail(vfs.as_ref(), "w", 7).unwrap().len(), 3);
    }

    #[test]
    fn reopen_truncates_the_unsynced_tail() {
        let vfs = Arc::new(SimVfs::new());
        let mut wal = WalWriter::open(vfs.clone(), "w", 100, 0).unwrap();
        for i in 0..3 {
            wal.append(payload(i)).unwrap();
        }
        wal.sync().unwrap();
        for i in 3..5 {
            wal.append(payload(i)).unwrap();
        }
        // Crash with two frames unsynced.
        vfs.crash();
        let wal = WalWriter::open(vfs.clone(), "w", 100, 0).unwrap();
        assert_eq!(wal.last_lsn(), 3);
        let tail = read_wal_tail(vfs.as_ref(), "w", 0).unwrap();
        assert_eq!(tail.len(), 3);
    }

    #[test]
    fn reopen_repairs_a_mid_frame_tear() {
        let vfs = Arc::new(SimVfs::new());
        let mut wal = WalWriter::open(vfs.clone(), "w", 1, 0).unwrap();
        for i in 0..3 {
            wal.append(payload(i)).unwrap();
        }
        let path = "w/".to_string() + &segment_name(1);
        let full = vfs.durable_len(&path).unwrap();
        // Tear the last durable frame in half.
        assert!(vfs.truncate_durable(&path, full - 5));
        vfs.crash();
        let mut wal = WalWriter::open(vfs.clone(), "w", 1, 0).unwrap();
        assert_eq!(wal.last_lsn(), 2);
        // The log keeps going after the repair.
        assert_eq!(wal.append(payload(99)).unwrap(), 3);
        let tail = read_wal_tail(vfs.as_ref(), "w", 0).unwrap();
        assert_eq!(tail.len(), 3);
        assert!(matches!(
            &tail[2].payload,
            FramePayload::Mutation { fact, .. } if fact.get(0) == &Value::Int(99)
        ));
    }

    #[test]
    fn rotation_starts_a_new_segment_and_removes_old_ones() {
        let vfs = Arc::new(SimVfs::new());
        let mut wal = WalWriter::open(vfs.clone(), "w", 1, 0).unwrap();
        for i in 0..4 {
            wal.append(payload(i)).unwrap();
        }
        wal.rotate(4).unwrap();
        assert_eq!(
            segments(vfs.as_ref(), "w").unwrap(),
            vec![(5, segment_name(5))]
        );
        assert_eq!(wal.append(payload(9)).unwrap(), 5);
        // A reader holding the snapshot cursor sees only the new frames.
        let tail = read_wal_tail(vfs.as_ref(), "w", 4).unwrap();
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].lsn, 5);
    }

    #[test]
    fn rotation_refuses_a_stale_cursor() {
        let vfs = Arc::new(SimVfs::new());
        let mut wal = WalWriter::open(vfs.clone(), "w", 1, 0).unwrap();
        wal.append(payload(0)).unwrap();
        wal.append(payload(1)).unwrap();
        assert!(wal.rotate(1).is_err());
    }

    #[test]
    fn mid_log_corruption_fails_loudly() {
        let vfs = Arc::new(SimVfs::new());
        let mut wal = WalWriter::open(vfs.clone(), "w", 1, 0).unwrap();
        for i in 0..3 {
            wal.append(payload(i)).unwrap();
        }
        // Keep the old segment around by writing a newer one manually
        // (rotation would delete it); then corrupt the old one mid-body.
        let new_path = "w/".to_string() + &segment_name(4);
        let mut f = vfs.create(&new_path).unwrap();
        f.append(SEGMENT_MAGIC).unwrap();
        let frame = Frame {
            lsn: 4,
            payload: payload(4),
        };
        f.append(&frame.encode()).unwrap();
        f.sync().unwrap();
        let old_path = "w/".to_string() + &segment_name(1);
        assert!(vfs.corrupt_durable(&old_path, 20, 3));
        vfs.crash();
        assert!(matches!(
            read_wal_tail(vfs.as_ref(), "w", 0),
            Err(WalError::Corrupt(_))
        ));
    }
}
