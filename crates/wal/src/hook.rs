//! [`WalHook`] — the [`reldb::DurabilityHook`] implementation that puts a
//! [`WalWriter`] underneath a live [`reldb::Database`].
//!
//! `Database::record_mutation` is infallible, so the hook cannot surface
//! an I/O error at the mutation site. Instead it **poisons** itself on the
//! first failed append: the error is latched, every later mutation is
//! dropped (the log must not skip an LSN and keep going), and the pipeline
//! checks [`WalHook::check`] after each database operation — a poisoned
//! hook is treated exactly like a process death at that point, which is
//! also precisely what the fault-injection suite simulates.
//!
//! The hook is shared (`Arc<WalHook>`) between the database (which calls
//! `on_mutation`) and the pipeline (which appends `Extend` frames, forces
//! syncs, and rotates at snapshots), so all log access funnels through one
//! mutex around the writer.

use crate::frame::FramePayload;
pub use crate::wal::WalWriterStats as WalStats;
use crate::wal::{mutation_payload, WalWriter};
use crate::{Result, WalError};
use reldb::FactId;
use std::sync::Mutex;

/// A durability hook writing every journalled mutation (and the
/// pipeline's `Extend` markers) to a [`WalWriter`], in epoch order.
#[derive(Debug)]
pub struct WalHook {
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Inner {
    writer: WalWriter,
    /// First I/O error, if any. Latched: once set, nothing more is
    /// written.
    poisoned: Option<WalError>,
}

impl WalHook {
    /// Wrap an opened writer.
    pub fn new(writer: WalWriter) -> WalHook {
        WalHook {
            inner: Mutex::new(Inner {
                writer,
                poisoned: None,
            }),
        }
    }

    /// # Panics
    ///
    /// Propagates mutex poisoning: a panic inside a WAL append already set
    /// the sticky `poisoned` error, and a poisoned lock means even that
    /// bookkeeping was interrupted — no safe recovery exists.
    fn with<T>(&self, f: impl FnOnce(&mut WalWriter) -> Result<T>) -> Result<T> {
        let mut g = self.inner.lock().expect("wal hook poisoned by panic");
        if let Some(e) = &g.poisoned {
            return Err(e.clone());
        }
        match f(&mut g.writer) {
            Ok(v) => Ok(v),
            Err(e) => {
                g.poisoned = Some(e.clone());
                Err(e)
            }
        }
    }

    /// Surface the latched error, if the hook swallowed one inside
    /// `on_mutation`. Pipelines call this after every database operation.
    pub fn check(&self) -> Result<()> {
        self.with(|_| Ok(()))
    }

    /// Append an `Extend` frame recording a completed embedding extension.
    /// Returns the assigned LSN.
    pub fn append_extend(&self, seed: u64, facts: Vec<FactId>) -> Result<u64> {
        self.with(|w| w.append(FramePayload::Extend { seed, facts }))
    }

    /// Force everything appended so far durable.
    pub fn sync(&self) -> Result<()> {
        self.with(super::wal::WalWriter::sync)
    }

    /// LSN of the last appended frame (0 if none), **without** forcing a
    /// sync — the frame may not be durable yet.
    pub fn last_lsn(&self) -> Result<u64> {
        self.with(|w| Ok(w.last_lsn()))
    }

    /// LSN of the last appended frame — the cursor a snapshot taken *now*
    /// must record. Also syncs: a snapshot must never point past the
    /// durable tail.
    pub fn snapshot_cursor(&self) -> Result<u64> {
        self.with(|w| {
            w.sync()?;
            Ok(w.last_lsn())
        })
    }

    /// Rotate segments after a durably committed snapshot at
    /// `snapshot_lsn` (see [`WalWriter::rotate`]).
    pub fn rotate(&self, snapshot_lsn: u64) -> Result<()> {
        self.with(|w| w.rotate(snapshot_lsn))
    }

    /// Write-side counters.
    ///
    /// # Panics
    ///
    /// Propagates mutex poisoning, like every accessor on this hook.
    pub fn stats(&self) -> WalStats {
        self.inner
            .lock()
            .expect("wal hook poisoned by panic")
            .writer
            .stats()
    }
}

impl reldb::DurabilityHook for WalHook {
    fn on_mutation(&self, record: &reldb::MutationRecord, payload: &reldb::Fact) {
        // Errors are latched, not surfaced: record_mutation is infallible.
        let _ = self.with(|w| w.append(mutation_payload(record, payload)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FailPoint, SimVfs};
    use crate::wal::read_wal_tail;
    use reldb::{movies, Value};
    use std::sync::Arc;

    #[test]
    fn hook_logs_every_mutation_including_cascades() {
        let vfs = Arc::new(SimVfs::new());
        let writer = WalWriter::open(vfs.clone(), "w", 1, 0).unwrap();
        let hook = Arc::new(WalHook::new(writer));
        let mut db = movies::movies_database();
        let epoch0 = db.epoch();
        db.attach_durability_hook(hook.clone()).unwrap();

        let studios = db.schema().relation_id("STUDIOS").unwrap();
        let victim = db.fact_ids(studios)[0];
        let journal = reldb::cascade_delete(&mut db, victim, true).unwrap();
        assert!(journal.len() > 1, "cascade must touch dependents");
        hook.check().unwrap();
        hook.sync().unwrap();

        let tail = read_wal_tail(vfs.as_ref(), "w", 0).unwrap();
        assert_eq!(tail.len(), journal.len());
        // Epoch-ordered, consecutive, and every frame carries the full
        // removed fact.
        for (i, frame) in tail.iter().enumerate() {
            match &frame.payload {
                FramePayload::Mutation { epoch, fact, .. } => {
                    assert_eq!(*epoch, epoch0 + 1 + i as u64);
                    assert!(!fact.values().is_empty());
                }
                other => panic!("expected mutation frame, got {other:?}"),
            }
        }
    }

    #[test]
    fn extend_frames_interleave_with_mutations_in_lsn_order() {
        let vfs = Arc::new(SimVfs::new());
        let writer = WalWriter::open(vfs.clone(), "w", 1, 0).unwrap();
        let hook = Arc::new(WalHook::new(writer));
        let mut db = movies::movies_database();
        db.attach_durability_hook(hook.clone()).unwrap();

        let actors = db.schema().relation_id("ACTORS").unwrap();
        let id = db
            .insert(
                actors,
                vec![
                    Value::Text("a99".into()),
                    Value::Text("New Actor".into()),
                    Value::Int(5),
                ],
            )
            .unwrap();
        let lsn = hook.append_extend(42, vec![id]).unwrap();
        assert_eq!(lsn, 2, "extend follows the insert frame");
        hook.sync().unwrap();
        let tail = read_wal_tail(vfs.as_ref(), "w", 0).unwrap();
        assert!(matches!(tail[0].payload, FramePayload::Mutation { .. }));
        assert!(matches!(
            &tail[1].payload,
            FramePayload::Extend { seed: 42, facts } if facts == &vec![id]
        ));
    }

    #[test]
    fn io_failure_poisons_the_hook_until_checked() {
        let vfs = Arc::new(SimVfs::new());
        let writer = WalWriter::open(vfs.clone(), "w", 1, 0).unwrap();
        let hook = Arc::new(WalHook::new(writer));
        let mut db = movies::movies_database();
        db.attach_durability_hook(hook.clone()).unwrap();

        vfs.set_fail_point(FailPoint::CrashBeforeOp(vfs.op_count() + 1));
        let actors = db.schema().relation_id("ACTORS").unwrap();
        // The mutation itself succeeds in memory; the hook swallows the
        // I/O error and latches it.
        db.insert(
            actors,
            vec![
                Value::Text("a99".into()),
                Value::Text("New Actor".into()),
                Value::Int(5),
            ],
        )
        .unwrap();
        assert_eq!(hook.check(), Err(WalError::Crashed));
        // Latched: still failing, and nothing further is appended.
        assert_eq!(hook.append_extend(1, Vec::new()), Err(WalError::Crashed));
        assert_eq!(hook.check(), Err(WalError::Crashed));
    }
}
