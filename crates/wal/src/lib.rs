//! # stembed-wal — durability for the embedding workspace
//!
//! Turns `reldb`'s bounded mutation journal into real durability
//! (ROADMAP item 2): an **append-only write-ahead log** of
//! [`reldb::MutationRecord`]s, **atomic snapshots** of database plus
//! embedding state, and **deterministic crash recovery** that replays the
//! WAL tail onto the newest valid snapshot. The workspace's determinism
//! contract (bit-identical results at any shard count, retained≡fresh,
//! cached≡uncached — see `PRECISION.md`) is what upgrades recovery from
//! "plausible" to **byte-checkable**: a recovered process must equal an
//! uninterrupted reference run bit for bit, and the fault-injection suite
//! asserts exactly that at every possible crash point.
//!
//! The crate layers bottom-up (the `storage/` vs `storage_engine/` split
//! of classic database engines):
//!
//! * [`crc`] — CRC-32/IEEE, the frame and section checksum;
//! * [`codec`] — bit-exact little-endian encoding of `reldb` values,
//!   facts, and mutation records (floats as `to_bits`), with total,
//!   bounds-checked decoding;
//! * [`vfs`] — the injectable I/O layer: [`Vfs`]/[`WalFile`] traits, the
//!   real [`StdVfs`], and the in-memory [`SimVfs`] whose [`FailPoint`]s
//!   model short writes, crashes before/after fsync, crashes
//!   mid-snapshot-rename, and post-crash corruption;
//! * [`frame`] — length-prefixed, CRC-checksummed, LSN/epoch-stamped
//!   frames and the torn-tail scan;
//! * [`wal`] — the segmented log: [`WalWriter`] with fsync batching,
//!   segment rotation at snapshots, and the multi-segment tail reader;
//! * [`snapshot`] — the snapshot container (schema + slot-exact facts +
//!   opaque embedding blobs) and its write-tmp → fsync → rename → fsync-dir
//!   atomicity protocol;
//! * [`hook`] — [`WalHook`], the [`reldb::DurabilityHook`] implementation
//!   gluing the log under a live [`reldb::Database`].
//!
//! What this crate deliberately does **not** know about: embedding
//! internals. Snapshots carry embedding state as tagged opaque byte blobs;
//! `stembed-core::snapshot` owns their encoding, `repro::durable` owns the
//! end-to-end pipeline and `recover()`.

pub mod codec;
pub mod crc;
pub mod frame;
pub mod hook;
pub mod snapshot;
pub mod vfs;
pub mod wal;

pub use frame::{Frame, FramePayload};
pub use hook::{WalHook, WalStats};
pub use snapshot::{latest_snapshot, write_snapshot, Snapshot};
pub use vfs::{FailPoint, SimVfs, StdVfs, Vfs, WalFile};
pub use wal::{read_wal_tail, segment_name, WalWriter};

use std::fmt;

/// Everything that can go wrong in the durability layer.
#[derive(Debug, Clone, PartialEq)]
pub enum WalError {
    /// Underlying I/O failure (message carries the OS error text).
    Io(String),
    /// Checksum mismatch, bad magic, truncation mid-structure, or any
    /// other decode failure. Recovery treats a corrupt *tail* frame as the
    /// end of the log; a corrupt snapshot falls back to the previous one.
    Corrupt(String),
    /// A fault-injected crash: the simulated process died at this I/O
    /// operation. All subsequent operations on the same [`SimVfs`] fail
    /// with this too, until [`SimVfs::crash`] starts the "next process".
    Crashed,
    /// Replaying the log diverged from the database's own validation.
    Db(reldb::DbError),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(msg) => write!(f, "wal i/o error: {msg}"),
            WalError::Corrupt(msg) => write!(f, "wal corruption: {msg}"),
            WalError::Crashed => write!(f, "simulated crash (fault injection)"),
            WalError::Db(e) => write!(f, "wal replay: {e}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<reldb::DbError> for WalError {
    fn from(e: reldb::DbError) -> Self {
        WalError::Db(e)
    }
}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e.to_string())
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, WalError>;
