//! Snapshot container and its atomic commit protocol.
//!
//! A snapshot is one self-validating file `snap-<lsn>.snp`:
//!
//! ```text
//! magic "STEMSNP1" | crc: u32 LE | len: u64 LE | body (len bytes)
//! body := lsn, epoch, schema, per-relation slot images, tagged blobs
//! ```
//!
//! `crc` is CRC-32/IEEE over the body — a snapshot either decodes in full
//! or is rejected in full. The database section is **slot-exact**: every
//! relation stores its complete slot vector including tombstones, so
//! [`Snapshot::restore_database`] rebuilds a database in which every
//! `FactId` denotes the same slot as in the snapshotted one — the
//! precondition for replaying the WAL tail on top. Embedding state rides
//! along as tagged opaque blobs (this crate knows nothing of embedding
//! internals; `stembed-core::snapshot` owns those encodings).
//!
//! **Commit protocol** (`write_snapshot`): write everything to
//! `snap-<lsn>.tmp`, fsync the file, rename to `snap-<lsn>.snp`, fsync
//! the directory. The rename is the commit point: a crash anywhere
//! before the directory sync leaves either no new file or only the
//! `.tmp` (ignored by recovery), and the *previous* snapshot — whose WAL
//! segments are deleted only after this commit — still restores. A crash
//! after it leaves the new snapshot fully readable. There is no state in
//! between, which is exactly what the crash-mid-rename fault injection
//! asserts.

use crate::codec::{read_fact, write_fact, ByteReader, ByteWriter};
use crate::crc::crc32;
use crate::vfs::{join, Vfs};
use crate::{Result, WalError};
use reldb::{Database, Fact, FactId, Schema, SchemaBuilder, ValueType};

/// Magic at the start of every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"STEMSNP1";

/// Committed snapshot file name for `lsn`.
pub fn snapshot_name(lsn: u64) -> String {
    format!("snap-{lsn:016}.snp")
}

/// Scratch name the snapshot is written under before the commit rename.
pub fn snapshot_tmp_name(lsn: u64) -> String {
    format!("snap-{lsn:016}.tmp")
}

/// Parse a committed snapshot name back into its LSN.
pub fn parse_snapshot_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("snap-")?.strip_suffix(".snp")?;
    if digits.len() != 16 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// A decoded (or to-be-written) snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The WAL cursor: every frame with `lsn > self.lsn` must be replayed
    /// on top of this snapshot.
    pub lsn: u64,
    /// The database epoch at capture time.
    pub epoch: u64,
    /// The schema.
    pub schema: Schema,
    /// Per relation (in [`RelationId`] order): the complete slot vector,
    /// `None` marking tombstones.
    pub slots: Vec<Vec<Option<Fact>>>,
    /// Tagged opaque sections (embedding state, RNG cursors, …).
    pub blobs: Vec<(String, Vec<u8>)>,
}

impl Snapshot {
    /// Capture the database's current state (slot-exact) plus the given
    /// blobs, stamped with the WAL cursor `lsn`.
    pub fn capture(db: &Database, lsn: u64, blobs: Vec<(String, Vec<u8>)>) -> Snapshot {
        let slots = db
            .schema()
            .relation_ids()
            .map(|rel| {
                (0..db.slot_count(rel))
                    .map(|row| db.fact(FactId::new(rel, row as u32)).cloned())
                    .collect()
            })
            .collect();
        Snapshot {
            lsn,
            epoch: db.epoch(),
            schema: db.schema().clone(),
            slots,
            blobs,
        }
    }

    /// Rebuild the database: same schema, same slots (tombstones
    /// included), fresh lineage at the snapshotted epoch.
    pub fn restore_database(&self) -> Result<Database> {
        Ok(Database::from_snapshot_parts(
            self.schema.clone(),
            self.slots.clone(),
            self.epoch,
        )?)
    }

    /// The blob with the given tag, if present.
    pub fn blob(&self, tag: &str) -> Option<&[u8]> {
        self.blobs
            .iter()
            .find(|(t, _)| t == tag)
            .map(|(_, b)| b.as_slice())
    }

    /// Encode to the container format (magic + crc + len + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u64(self.lsn);
        w.u64(self.epoch);
        write_schema(&mut w, &self.schema);
        w.len_prefix(self.slots.len());
        for rel_slots in &self.slots {
            w.len_prefix(rel_slots.len());
            for slot in rel_slots {
                match slot {
                    None => w.u8(0),
                    Some(fact) => {
                        w.u8(1);
                        write_fact(&mut w, fact);
                    }
                }
            }
        }
        w.len_prefix(self.blobs.len());
        for (tag, bytes) in &self.blobs {
            w.str(tag);
            w.len_prefix(bytes.len());
            w.bytes(bytes);
        }
        let body = w.into_bytes();
        let mut out = Vec::with_capacity(20 + body.len());
        out.extend_from_slice(SNAPSHOT_MAGIC);
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out.extend_from_slice(&(body.len() as u64).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decode and checksum-verify a container. Total: arbitrary bytes
    /// produce a typed error, never a panic.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot> {
        if bytes.len() < 20 || &bytes[..8] != SNAPSHOT_MAGIC {
            return Err(WalError::Corrupt("bad snapshot magic".into()));
        }
        // PANICS: never — `bytes.len() >= 20` was checked above.
        let crc = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        // PANICS: never — `bytes.len() >= 20` was checked above.
        let len = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
        let body = &bytes[20..];
        if len != body.len() as u64 {
            return Err(WalError::Corrupt("snapshot length mismatch".into()));
        }
        if crc32(body) != crc {
            return Err(WalError::Corrupt("snapshot checksum mismatch".into()));
        }
        let mut r = ByteReader::new(body);
        let lsn = r.u64()?;
        let epoch = r.u64()?;
        let schema = read_schema(&mut r)?;
        let rel_count = r.count_prefix(8)?;
        let mut slots = Vec::with_capacity(rel_count);
        for _ in 0..rel_count {
            let slot_count = r.count_prefix(1)?;
            let mut rel_slots = Vec::with_capacity(slot_count);
            for _ in 0..slot_count {
                match r.u8()? {
                    0 => rel_slots.push(None),
                    1 => rel_slots.push(Some(read_fact(&mut r)?)),
                    tag => {
                        return Err(WalError::Corrupt(format!("unknown slot tag {tag}")));
                    }
                }
            }
            slots.push(rel_slots);
        }
        let blob_count = r.count_prefix(8)?;
        let mut blobs = Vec::with_capacity(blob_count);
        for _ in 0..blob_count {
            let tag = r.str()?;
            let n = r.len_prefix()?;
            blobs.push((tag, r.bytes(n)?.to_vec()));
        }
        if !r.is_exhausted() {
            return Err(WalError::Corrupt("trailing bytes in snapshot".into()));
        }
        Ok(Snapshot {
            lsn,
            epoch,
            schema,
            slots,
            blobs,
        })
    }
}

/// Schema encoding: names and positions only — everything the
/// [`SchemaBuilder`] needs to revalidate and rebuild the identical
/// schema (relation and FK ids are declaration-order indices, which the
/// encoding preserves).
fn write_schema(w: &mut ByteWriter, schema: &Schema) {
    w.len_prefix(schema.relation_count());
    for rel in schema.relations() {
        w.str(&rel.name);
        w.len_prefix(rel.attributes.len());
        for attr in &rel.attributes {
            w.str(&attr.name);
            w.u8(match attr.ty {
                ValueType::Int => 0,
                ValueType::Float => 1,
                ValueType::Text => 2,
                ValueType::Bool => 3,
            });
        }
        w.len_prefix(rel.key.len());
        for &k in &rel.key {
            w.u64(k as u64);
        }
    }
    w.len_prefix(schema.foreign_keys().len());
    for fk in schema.foreign_keys() {
        w.u32(fk.from_rel.0);
        w.len_prefix(fk.from_attrs.len());
        for &a in &fk.from_attrs {
            w.u64(a as u64);
        }
        w.u32(fk.to_rel.0);
    }
}

fn read_schema(r: &mut ByteReader<'_>) -> Result<Schema> {
    let rel_count = r.count_prefix(1)?;
    let mut b = SchemaBuilder::new();
    // Names collected alongside building: FK decoding refers to relations
    // and attributes by index, the builder wants names.
    let mut rel_names: Vec<String> = Vec::with_capacity(rel_count);
    let mut attr_names: Vec<Vec<String>> = Vec::with_capacity(rel_count);
    for _ in 0..rel_count {
        let name = r.str()?;
        let attr_count = r.count_prefix(1)?;
        let mut attrs = Vec::with_capacity(attr_count);
        for _ in 0..attr_count {
            let attr_name = r.str()?;
            let ty = match r.u8()? {
                0 => ValueType::Int,
                1 => ValueType::Float,
                2 => ValueType::Text,
                3 => ValueType::Bool,
                tag => return Err(WalError::Corrupt(format!("unknown type tag {tag}"))),
            };
            attrs.push((attr_name, ty));
        }
        let key_count = r.count_prefix(8)?;
        let mut key = Vec::with_capacity(key_count);
        for _ in 0..key_count {
            let pos = r.u64()? as usize;
            if pos >= attrs.len() {
                return Err(WalError::Corrupt("key position out of range".into()));
            }
            key.push(pos);
        }
        let mut rb = b.relation(name.clone());
        for (attr_name, ty) in &attrs {
            rb = rb.attr(attr_name.clone(), *ty);
        }
        let key_names: Vec<&str> = key.iter().map(|&k| attrs[k].0.as_str()).collect();
        rb.key(&key_names);
        rel_names.push(name);
        attr_names.push(attrs.into_iter().map(|(n, _)| n).collect());
    }
    let fk_count = r.count_prefix(9)?;
    for _ in 0..fk_count {
        let from_rel = r.u32()? as usize;
        let from_count = r.count_prefix(8)?;
        let mut from_attrs = Vec::with_capacity(from_count);
        for _ in 0..from_count {
            from_attrs.push(r.u64()? as usize);
        }
        let to_rel = r.u32()? as usize;
        let (Some(from_name), Some(to_name)) = (rel_names.get(from_rel), rel_names.get(to_rel))
        else {
            return Err(WalError::Corrupt("fk relation out of range".into()));
        };
        let names = &attr_names[from_rel];
        let mut from_attr_names = Vec::with_capacity(from_attrs.len());
        for a in from_attrs {
            match names.get(a) {
                Some(n) => from_attr_names.push(n.as_str()),
                None => return Err(WalError::Corrupt("fk attribute out of range".into())),
            }
        }
        b.foreign_key(from_name.clone(), &from_attr_names, to_name.clone());
    }
    b.build()
        .map_err(|e| WalError::Corrupt(format!("snapshot schema invalid: {e}")))
}

/// Atomically commit a snapshot into `dir` and prune the superseded ones.
/// Returns the committed file's size in bytes. See the module docs for
/// the protocol; after this returns, [`latest_snapshot`] finds the new
/// snapshot even across a crash.
pub fn write_snapshot(vfs: &dyn Vfs, dir: &str, snap: &Snapshot) -> Result<u64> {
    vfs.create_dir_all(dir)?;
    let bytes = snap.encode();
    let tmp = join(dir, &snapshot_tmp_name(snap.lsn));
    let committed = join(dir, &snapshot_name(snap.lsn));
    let mut file = vfs.create(&tmp)?;
    file.append(&bytes)?;
    file.sync()?;
    drop(file);
    vfs.rename(&tmp, &committed)?;
    // The directory sync is the durable commit point.
    vfs.sync_dir(dir)?;
    // Prune superseded snapshots (and any abandoned tmp files) — only
    // after the commit, so a crash at any earlier point still recovers
    // from the previous snapshot.
    for name in vfs.list(dir)? {
        let stale_snap = parse_snapshot_name(&name).is_some_and(|lsn| lsn < snap.lsn);
        let stale_tmp = name.ends_with(".tmp") && name != snapshot_tmp_name(snap.lsn);
        if stale_snap || stale_tmp {
            vfs.remove(&join(dir, &name))?;
        }
    }
    vfs.sync_dir(dir)?;
    Ok(bytes.len() as u64)
}

/// Load the newest decodable snapshot in `dir`: candidates are tried
/// newest-first, skipping corrupt ones (a corrupt *newest* snapshot can
/// only be an in-flight one whose rename raced a crash — its predecessor
/// is the durable truth). `Ok(None)` when the directory holds no
/// committed snapshot at all.
pub fn latest_snapshot(vfs: &dyn Vfs, dir: &str) -> Result<Option<Snapshot>> {
    let mut lsns: Vec<u64> = vfs
        .list(dir)?
        .into_iter()
        .filter_map(|name| parse_snapshot_name(&name))
        .collect();
    lsns.sort_unstable();
    for lsn in lsns.into_iter().rev() {
        let path = join(dir, &snapshot_name(lsn));
        let bytes = vfs.read(&path)?;
        match Snapshot::decode(&bytes) {
            Ok(snap) => return Ok(Some(snap)),
            // A torn snapshot: fall through to the next-older one.
            Err(WalError::Corrupt(_)) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::SimVfs;

    fn sample_db() -> Database {
        let mut db = reldb::movies::movies_database();
        // Leave a tombstone somewhere so slot-exactness is actually
        // exercised: delete the first fact nothing references.
        let ids: Vec<FactId> = db
            .schema()
            .relation_ids()
            .flat_map(|rel| db.fact_ids(rel))
            .collect();
        assert!(
            ids.into_iter().any(|id| db.delete(id).is_ok()),
            "movies database must contain at least one unreferenced fact"
        );
        db
    }

    #[test]
    fn snapshot_round_trips_bit_exactly() {
        let db = sample_db();
        let snap = Snapshot::capture(
            &db,
            42,
            vec![("fwd".into(), vec![1, 2, 3]), ("n2v".into(), Vec::new())],
        );
        let bytes = snap.encode();
        let decoded = Snapshot::decode(&bytes).unwrap();
        assert_eq!(decoded, snap);
        // Decode → encode is byte-identical (recovery determinism).
        assert_eq!(decoded.encode(), bytes);
        assert_eq!(decoded.blob("fwd"), Some(&[1u8, 2, 3][..]));
        assert_eq!(decoded.blob("missing"), None);
    }

    #[test]
    fn restore_database_preserves_slots_epoch_and_schema() {
        let db = sample_db();
        let snap = Snapshot::capture(&db, 0, Vec::new());
        let restored = snap.restore_database().unwrap();
        assert_eq!(restored.schema(), db.schema());
        assert_eq!(restored.epoch(), db.epoch());
        for rel in db.schema().relation_ids() {
            assert_eq!(restored.slot_count(rel), db.slot_count(rel));
            for row in 0..db.slot_count(rel) {
                let id = FactId::new(rel, row as u32);
                assert_eq!(restored.fact(id), db.fact(id));
            }
        }
    }

    #[test]
    fn corrupted_snapshots_are_rejected_not_decoded() {
        let db = sample_db();
        let snap = Snapshot::capture(&db, 7, vec![("x".into(), vec![9; 16])]);
        let bytes = snap.encode();
        assert!(Snapshot::decode(&bytes[..bytes.len() - 1]).is_err());
        for pos in (0..bytes.len()).step_by(13) {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x10;
            assert!(
                Snapshot::decode(&corrupt).is_err(),
                "flip at {pos} must fail the checksum"
            );
        }
    }

    #[test]
    fn commit_protocol_survives_crash_before_and_after_rename() {
        let db = sample_db();
        let vfs = SimVfs::new();
        vfs.create_dir_all("s").unwrap();
        let old = Snapshot::capture(&db, 10, Vec::new());
        write_snapshot(&vfs, "s", &old).unwrap();
        // Newer snapshot: crash right after the rename op but before the
        // directory sync — the commit must not be durable yet.
        let newer = Snapshot::capture(&db, 20, Vec::new());
        let ops_before = vfs.op_count();
        // Dry-run a full write on a scratch VFS to learn the op layout:
        // append, sync, rename, sync_dir, (prunes…), sync_dir.
        vfs.set_fail_point(crate::vfs::FailPoint::CrashAfterOp(ops_before + 2));
        assert!(write_snapshot(&vfs, "s", &newer).is_err());
        vfs.crash();
        let recovered = latest_snapshot(&vfs, "s").unwrap().unwrap();
        assert_eq!(recovered.lsn, 10, "uncommitted snapshot must not win");
        // Clean rewrite: now the new snapshot commits and the old one is
        // pruned.
        write_snapshot(&vfs, "s", &newer).unwrap();
        vfs.crash();
        let recovered = latest_snapshot(&vfs, "s").unwrap().unwrap();
        assert_eq!(recovered.lsn, 20);
        assert_eq!(
            vfs.durable_paths()
                .iter()
                .filter(|p| p.ends_with(".snp"))
                .count(),
            1
        );
    }
}
