//! Bit-exact binary codec for the WAL and snapshot payloads.
//!
//! Hand-rolled little-endian encoding (the workspace vendors everything;
//! no serde). Two properties matter more than compactness:
//!
//! * **Bit-exactness**: floats travel as `to_bits()` / `from_bits()`, so
//!   an encode→decode round trip reproduces the *identical* f64/f32 —
//!   including negative zero — which is what makes recovered state
//!   byte-comparable against an uninterrupted run (see `DURABILITY.md`).
//!   NaN never occurs in stored values (`reldb` rejects it at insert).
//! * **Totality of decoding**: every reader checks bounds and tags and
//!   returns a typed error instead of panicking, so arbitrarily corrupted
//!   input — the fault-injection suite feeds exactly that — degrades into
//!   `WalError::Corrupt`, never UB or an abort.

use crate::WalError;
use reldb::{Fact, FactId, MutationKind, RelationId, Value};

/// Append-only little-endian byte sink.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Fresh empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Raw bytes, verbatim.
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// One byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `usize` as u64 (platform-independent width).
    pub fn len_prefix(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// f64 as its IEEE-754 bit pattern.
    pub fn f64_bits(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// f32 as its IEEE-754 bit pattern.
    pub fn f32_bits(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.len_prefix(s.len());
        self.bytes(s.as_bytes());
    }
}

/// Bounds-checked little-endian reader over an encoded slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn corrupt(what: &str) -> WalError {
    WalError::Corrupt(format!("decode: {what}"))
}

impl<'a> ByteReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the whole input was consumed (decoders of framed payloads
    /// require this: trailing garbage is corruption, not padding).
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Take `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WalError> {
        if self.remaining() < n {
            return Err(corrupt("input truncated"));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// One byte.
    pub fn u8(&mut self) -> Result<u8, WalError> {
        Ok(self.bytes(1)?[0])
    }

    /// Little-endian u32.
    pub fn u32(&mut self) -> Result<u32, WalError> {
        // PANICS: never — `bytes(4)` returned exactly 4 bytes.
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    /// Little-endian u64.
    pub fn u64(&mut self) -> Result<u64, WalError> {
        // PANICS: never — `bytes(8)` returned exactly 8 bytes.
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    /// A u64 length prefix, validated against the bytes actually left so a
    /// corrupted length cannot drive a huge allocation.
    pub fn len_prefix(&mut self) -> Result<usize, WalError> {
        let n = self.u64()?;
        if n > self.remaining() as u64 {
            return Err(corrupt("length prefix exceeds input"));
        }
        Ok(n as usize)
    }

    /// A length prefix counting fixed-size items of `item_bytes` each.
    pub fn count_prefix(&mut self, item_bytes: usize) -> Result<usize, WalError> {
        let n = self.u64()?;
        if n.checked_mul(item_bytes.max(1) as u64)
            .is_none_or(|total| total > self.remaining() as u64)
        {
            return Err(corrupt("count prefix exceeds input"));
        }
        Ok(n as usize)
    }

    /// f64 from its bit pattern.
    pub fn f64_bits(&mut self) -> Result<f64, WalError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// f32 from its bit pattern.
    pub fn f32_bits(&mut self) -> Result<f32, WalError> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WalError> {
        let n = self.len_prefix()?;
        let bytes = self.bytes(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("invalid utf-8"))
    }
}

// ---------------------------------------------------------------------
// reldb value codecs
// ---------------------------------------------------------------------

const VAL_NULL: u8 = 0;
const VAL_INT: u8 = 1;
const VAL_FLOAT: u8 = 2;
const VAL_TEXT: u8 = 3;
const VAL_BOOL_FALSE: u8 = 4;
const VAL_BOOL_TRUE: u8 = 5;

/// Encode one [`Value`].
pub fn write_value(w: &mut ByteWriter, v: &Value) {
    match v {
        Value::Null => w.u8(VAL_NULL),
        Value::Int(i) => {
            w.u8(VAL_INT);
            w.u64(*i as u64);
        }
        Value::Float(f) => {
            w.u8(VAL_FLOAT);
            w.f64_bits(*f);
        }
        Value::Text(s) => {
            w.u8(VAL_TEXT);
            w.str(s);
        }
        Value::Bool(false) => w.u8(VAL_BOOL_FALSE),
        Value::Bool(true) => w.u8(VAL_BOOL_TRUE),
    }
}

/// Decode one [`Value`].
pub fn read_value(r: &mut ByteReader<'_>) -> Result<Value, WalError> {
    match r.u8()? {
        VAL_NULL => Ok(Value::Null),
        VAL_INT => Ok(Value::Int(r.u64()? as i64)),
        VAL_FLOAT => {
            let f = r.f64_bits()?;
            if f.is_nan() {
                // reldb rejects NaN at insert, so a NaN here can only be
                // corruption that happened to keep the tag byte valid.
                return Err(corrupt("NaN value"));
            }
            Ok(Value::Float(f))
        }
        VAL_TEXT => Ok(Value::Text(r.str()?)),
        VAL_BOOL_FALSE => Ok(Value::Bool(false)),
        VAL_BOOL_TRUE => Ok(Value::Bool(true)),
        tag => Err(corrupt(&format!("unknown value tag {tag}"))),
    }
}

/// Encode a [`Fact`]: arity-prefixed values.
pub fn write_fact(w: &mut ByteWriter, fact: &Fact) {
    w.len_prefix(fact.arity());
    for v in fact.values() {
        write_value(w, v);
    }
}

/// Decode a [`Fact`].
pub fn read_fact(r: &mut ByteReader<'_>) -> Result<Fact, WalError> {
    // A value is at least one byte, so arity is bounded by the remainder.
    let arity = r.count_prefix(1)?;
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(read_value(r)?);
    }
    Ok(Fact::new(values))
}

/// Encode a [`FactId`].
pub fn write_fact_id(w: &mut ByteWriter, id: FactId) {
    w.u32(id.rel.0);
    w.u32(id.row);
}

/// Decode a [`FactId`].
pub fn read_fact_id(r: &mut ByteReader<'_>) -> Result<FactId, WalError> {
    let rel = RelationId(r.u32()?);
    let row = r.u32()?;
    Ok(FactId::new(rel, row))
}

/// Encode a [`MutationKind`].
pub fn write_kind(w: &mut ByteWriter, kind: MutationKind) {
    w.u8(match kind {
        MutationKind::Insert => 0,
        MutationKind::Delete => 1,
        MutationKind::Restore => 2,
    });
}

/// Decode a [`MutationKind`].
pub fn read_kind(r: &mut ByteReader<'_>) -> Result<MutationKind, WalError> {
    match r.u8()? {
        0 => Ok(MutationKind::Insert),
        1 => Ok(MutationKind::Delete),
        2 => Ok(MutationKind::Restore),
        tag => Err(corrupt(&format!("unknown mutation kind {tag}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_value(v: Value) {
        let mut w = ByteWriter::new();
        write_value(&mut w, &v);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(read_value(&mut r).unwrap(), v);
        assert!(r.is_exhausted());
    }

    #[test]
    fn values_round_trip_bit_exactly() {
        round_trip_value(Value::Null);
        round_trip_value(Value::Int(-42));
        round_trip_value(Value::Int(i64::MIN));
        round_trip_value(Value::Float(0.1 + 0.2));
        round_trip_value(Value::Float(-0.0));
        round_trip_value(Value::Float(f64::MIN_POSITIVE));
        round_trip_value(Value::Text("møvies ⊥".into()));
        round_trip_value(Value::Text(String::new()));
        round_trip_value(Value::Bool(true));
        round_trip_value(Value::Bool(false));
    }

    #[test]
    fn negative_zero_survives() {
        let mut w = ByteWriter::new();
        write_value(&mut w, &Value::Float(-0.0));
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        match read_value(&mut r).unwrap() {
            Value::Float(f) => assert_eq!(f.to_bits(), (-0.0f64).to_bits()),
            other => panic!("wrong value {other:?}"),
        }
    }

    #[test]
    fn facts_round_trip() {
        let fact = Fact::new(vec![
            Value::Text("m1".into()),
            Value::Null,
            Value::Int(1984),
            Value::Float(7.5),
        ]);
        let mut w = ByteWriter::new();
        write_fact(&mut w, &fact);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(read_fact(&mut r).unwrap(), fact);
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_and_garbage_input_errors_out() {
        let mut w = ByteWriter::new();
        write_fact(&mut w, &Fact::new(vec![Value::Text("hello".into())]));
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(read_fact(&mut r).is_err(), "truncation at {cut} must fail");
        }
        // A hostile length prefix must not allocate or panic.
        let mut r = ByteReader::new(&[u8::MAX; 9]);
        assert!(read_fact(&mut r).is_err());
        // An unknown tag byte.
        let mut r = ByteReader::new(&[99]);
        assert!(read_value(&mut r).is_err());
    }

    #[test]
    fn nan_floats_are_rejected_as_corruption() {
        let mut w = ByteWriter::new();
        w.u8(2); // VAL_FLOAT
        w.u64(f64::NAN.to_bits());
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(read_value(&mut r).is_err());
    }
}
