//! WAL frame format and the torn-tail scan.
//!
//! A segment file is the 8-byte magic `STEMWAL1` followed by frames:
//!
//! ```text
//! ┌─────────────┬─────────────┬────────────────────────────────┐
//! │ len: u32 LE │ crc: u32 LE │ payload (len bytes)            │
//! └─────────────┴─────────────┴────────────────────────────────┘
//! payload := tag: u8, lsn: u64 LE, body
//! tag 1 (mutation) body := kind, fact id, epoch: u64, fact values
//! tag 2 (extend)   body := seed: u64, count: u64, fact ids
//! ```
//!
//! `crc` is CRC-32/IEEE over the payload. The **LSN** is a global,
//! gap-free sequence number across segments — the replay cursor snapshots
//! record. Mutation frames additionally carry the database **epoch** the
//! mutation produced, so replay can assert it is reconstructing exactly
//! the journalled history (epochs are consecutive per lineage).
//!
//! [`scan`] walks a segment and stops at the first frame that is
//! incomplete (torn tail), checksum-invalid (bit rot or a tear inside the
//! payload), or undecodable. Everything before that point is intact —
//! length prefix, checksum, and total decode all agreed — and everything
//! from it on is reported as the *valid length* for the opener to
//! truncate away ([`crate::WalWriter::open`]). A frame that passes the
//! CRC decodes from exactly the bytes that were summed, so corruption can
//! never silently morph one record into another (the corruption property
//! suite flips bits to verify).

use crate::codec::{
    read_fact, read_fact_id, read_kind, write_fact, write_fact_id, write_kind, ByteReader,
    ByteWriter,
};
use crate::crc::crc32;
use crate::{Result, WalError};
use reldb::{Fact, FactId, MutationKind};

/// Magic at the start of every WAL segment.
pub const SEGMENT_MAGIC: &[u8; 8] = b"STEMWAL1";

const TAG_MUTATION: u8 = 1;
const TAG_EXTEND: u8 = 2;

/// What a frame records.
#[derive(Debug, Clone, PartialEq)]
pub enum FramePayload {
    /// One database mutation, with its full fact payload (the live fact
    /// for inserts/restores, the removed values for deletes).
    Mutation {
        /// What happened.
        kind: MutationKind,
        /// The touched slot.
        id: FactId,
        /// The database epoch this mutation produced.
        epoch: u64,
        /// The complete fact (replay is total).
        fact: Fact,
    },
    /// One completed embedding extension: the facts extended and the seed
    /// the pipeline derived for the call. Replay re-runs the extension —
    /// determinism makes the re-run bit-identical.
    Extend {
        /// The derived seed passed to `extend`.
        seed: u64,
        /// The facts extended, in call order.
        facts: Vec<FactId>,
    },
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Global, gap-free sequence number (replay cursor).
    pub lsn: u64,
    /// The logged event.
    pub payload: FramePayload,
}

impl Frame {
    /// Encode to the on-disk framing (len + crc + payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match &self.payload {
            FramePayload::Mutation {
                kind,
                id,
                epoch,
                fact,
            } => {
                w.u8(TAG_MUTATION);
                w.u64(self.lsn);
                write_kind(&mut w, *kind);
                write_fact_id(&mut w, *id);
                w.u64(*epoch);
                write_fact(&mut w, fact);
            }
            FramePayload::Extend { seed, facts } => {
                w.u8(TAG_EXTEND);
                w.u64(self.lsn);
                w.u64(*seed);
                w.len_prefix(facts.len());
                for &f in facts {
                    write_fact_id(&mut w, f);
                }
            }
        }
        let payload = w.into_bytes();
        let mut out = Vec::with_capacity(8 + payload.len());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decode one checksum-verified payload. Requires total consumption:
    /// trailing bytes inside a framed payload are corruption.
    fn decode_payload(payload: &[u8]) -> Result<Frame> {
        let mut r = ByteReader::new(payload);
        let tag = r.u8()?;
        let lsn = r.u64()?;
        let frame = match tag {
            TAG_MUTATION => {
                let kind = read_kind(&mut r)?;
                let id = read_fact_id(&mut r)?;
                let epoch = r.u64()?;
                let fact = read_fact(&mut r)?;
                Frame {
                    lsn,
                    payload: FramePayload::Mutation {
                        kind,
                        id,
                        epoch,
                        fact,
                    },
                }
            }
            TAG_EXTEND => {
                let seed = r.u64()?;
                let count = r.count_prefix(8)?;
                let mut facts = Vec::with_capacity(count);
                for _ in 0..count {
                    facts.push(read_fact_id(&mut r)?);
                }
                Frame {
                    lsn,
                    payload: FramePayload::Extend { seed, facts },
                }
            }
            tag => return Err(WalError::Corrupt(format!("unknown frame tag {tag}"))),
        };
        if !r.is_exhausted() {
            return Err(WalError::Corrupt("trailing bytes inside frame".into()));
        }
        Ok(frame)
    }
}

/// Result of scanning one segment.
#[derive(Debug)]
pub struct ScanResult {
    /// The intact frames, in file order.
    pub frames: Vec<Frame>,
    /// Byte offset of the end of the last intact frame (including the
    /// magic). Truncating the file here removes the torn tail.
    pub valid_len: u64,
    /// Why the scan stopped before the end of the file, if it did.
    pub tail_error: Option<WalError>,
}

/// Scan a segment's bytes: verify the magic, then decode frames until the
/// first torn or corrupt one. Never panics on arbitrary input.
pub fn scan(bytes: &[u8]) -> ScanResult {
    if bytes.len() < SEGMENT_MAGIC.len() || &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        return ScanResult {
            frames: Vec::new(),
            valid_len: 0,
            tail_error: Some(WalError::Corrupt("bad or torn segment magic".into())),
        };
    }
    let mut frames = Vec::new();
    let mut pos = SEGMENT_MAGIC.len();
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            return ScanResult {
                frames,
                valid_len: pos as u64,
                tail_error: None,
            };
        }
        if rest.len() < 8 {
            return ScanResult {
                frames,
                valid_len: pos as u64,
                tail_error: Some(WalError::Corrupt("torn frame header".into())),
            };
        }
        // PANICS: never — `rest.len() >= 8` was checked above.
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        // PANICS: never — `rest.len() >= 8` was checked above.
        let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        if rest.len() < 8 + len {
            return ScanResult {
                frames,
                valid_len: pos as u64,
                tail_error: Some(WalError::Corrupt("torn frame payload".into())),
            };
        }
        let payload = &rest[8..8 + len];
        if crc32(payload) != crc {
            return ScanResult {
                frames,
                valid_len: pos as u64,
                tail_error: Some(WalError::Corrupt("frame checksum mismatch".into())),
            };
        }
        match Frame::decode_payload(payload) {
            Ok(frame) => frames.push(frame),
            Err(e) => {
                return ScanResult {
                    frames,
                    valid_len: pos as u64,
                    tail_error: Some(e),
                }
            }
        }
        pos += 8 + len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reldb::{RelationId, Value};

    fn mutation_frame(lsn: u64) -> Frame {
        Frame {
            lsn,
            payload: FramePayload::Mutation {
                kind: MutationKind::Insert,
                id: FactId::new(RelationId(2), 7),
                epoch: lsn + 100,
                fact: Fact::new(vec![
                    Value::Text("m1".into()),
                    Value::Int(3),
                    Value::Float(-0.0),
                    Value::Null,
                ]),
            },
        }
    }

    fn extend_frame(lsn: u64) -> Frame {
        Frame {
            lsn,
            payload: FramePayload::Extend {
                seed: 0xdead_beef,
                facts: vec![FactId::new(RelationId(0), 1), FactId::new(RelationId(1), 2)],
            },
        }
    }

    fn segment(frames: &[Frame]) -> Vec<u8> {
        let mut bytes = SEGMENT_MAGIC.to_vec();
        for f in frames {
            bytes.extend_from_slice(&f.encode());
        }
        bytes
    }

    #[test]
    fn frames_round_trip_through_a_segment() {
        let frames = vec![mutation_frame(1), extend_frame(2), mutation_frame(3)];
        let bytes = segment(&frames);
        let scan = scan(&bytes);
        assert!(scan.tail_error.is_none());
        assert_eq!(scan.valid_len, bytes.len() as u64);
        assert_eq!(scan.frames, frames);
    }

    #[test]
    fn empty_segment_is_valid() {
        let scan = scan(SEGMENT_MAGIC);
        assert!(scan.tail_error.is_none());
        assert!(scan.frames.is_empty());
        assert_eq!(scan.valid_len, 8);
    }

    #[test]
    fn torn_tail_keeps_the_intact_prefix() {
        let frames = vec![mutation_frame(1), extend_frame(2)];
        let bytes = segment(&frames);
        let full = bytes.len();
        let first_end = SEGMENT_MAGIC.len() + frames[0].encode().len();
        // Cut exactly at the frame boundary: a clean log, no tail error.
        let clean = scan(&bytes[..first_end]);
        assert!(clean.tail_error.is_none());
        assert_eq!(clean.frames.len(), 1);
        // Cut anywhere inside the second frame: frame 0 survives, the
        // tear is reported, and valid_len points at the boundary.
        for cut in first_end + 1..full {
            let scan = scan(&bytes[..cut]);
            assert_eq!(scan.frames.len(), 1, "cut at {cut}");
            assert_eq!(scan.frames[0], frames[0]);
            assert_eq!(scan.valid_len as usize, first_end);
            assert!(scan.tail_error.is_some());
        }
    }

    #[test]
    fn bit_flips_never_panic_and_never_decode_differently() {
        // The corruption property of satellite 3 at the single-segment
        // level; the seeded sweep lives in tests/corruption.rs.
        let frames = vec![mutation_frame(1), extend_frame(2)];
        let bytes = segment(&frames);
        for pos in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x40;
            let scan = scan(&corrupt);
            // Every frame that still decodes must be one of the originals,
            // byte-identical — corruption may only truncate the log, not
            // rewrite history.
            for f in &scan.frames {
                assert!(frames.contains(f), "flip at {pos} morphed a frame");
            }
        }
    }

    #[test]
    fn bad_magic_yields_no_frames() {
        let mut bytes = segment(&[mutation_frame(1)]);
        bytes[0] ^= 0xFF;
        let scan = scan(&bytes);
        assert!(scan.frames.is_empty());
        assert_eq!(scan.valid_len, 0);
        assert!(scan.tail_error.is_some());
    }
}
