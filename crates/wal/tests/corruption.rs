//! Corrupted-WAL decode property suite (seeded, exhaustive-per-seed).
//!
//! Property: arbitrary byte flips and truncations applied to a valid WAL
//! (segments and snapshots) **never panic** the decoder and **never**
//! yield a frame that passes its checksum but decodes to a record
//! different from the one originally written. Corruption may only
//! truncate history, never rewrite it.

use reldb::{Fact, FactId, MutationKind, RelationId, Value};
use stembed_runtime::rng::DetRng;
use stembed_wal::frame::{scan, Frame, SEGMENT_MAGIC};
use stembed_wal::{FramePayload, Snapshot};

/// A mixed, representative frame population: inserts, deletes with float
/// payloads (bit-exactness matters), restores, and extends.
fn reference_frames() -> Vec<Frame> {
    let mut frames = Vec::new();
    for lsn in 1..=20u64 {
        let payload = match lsn % 4 {
            0 => FramePayload::Extend {
                seed: lsn * 0x9e37_79b9,
                facts: (0..lsn % 5)
                    .map(|i| FactId::new(RelationId(i as u32 % 3), i as u32))
                    .collect(),
            },
            1 => FramePayload::Mutation {
                kind: MutationKind::Insert,
                id: FactId::new(RelationId(0), lsn as u32),
                epoch: 100 + lsn,
                fact: Fact::new(vec![
                    Value::Text(format!("t{lsn}")),
                    Value::Int(lsn as i64 - 7),
                    Value::Null,
                ]),
            },
            2 => FramePayload::Mutation {
                kind: MutationKind::Delete,
                id: FactId::new(RelationId(1), lsn as u32),
                epoch: 100 + lsn,
                fact: Fact::new(vec![
                    Value::Float(-0.0),
                    Value::Float(f64::MIN_POSITIVE * 0.5),
                    Value::Bool(lsn % 8 == 2),
                ]),
            },
            _ => FramePayload::Mutation {
                kind: MutationKind::Restore,
                id: FactId::new(RelationId(2), lsn as u32),
                epoch: 100 + lsn,
                fact: Fact::new(vec![Value::Text(String::new()), Value::Int(i64::MIN)]),
            },
        };
        frames.push(Frame { lsn, payload });
    }
    frames
}

fn segment_bytes(frames: &[Frame]) -> Vec<u8> {
    let mut bytes = SEGMENT_MAGIC.to_vec();
    for f in frames {
        bytes.extend_from_slice(&f.encode());
    }
    bytes
}

/// Every frame the scanner still accepts must be byte-identical to one of
/// the originals *and* a prefix-consistent survivor: an accepted frame is
/// always exactly `originals[i]` for its position `i`.
fn assert_no_morph(scanned: &[Frame], originals: &[Frame], what: &str) {
    for (i, frame) in scanned.iter().enumerate() {
        assert!(
            i < originals.len() && *frame == originals[i],
            "{what}: surviving frame {i} does not match the original"
        );
    }
}

#[test]
fn random_byte_flips_never_panic_and_never_morph_frames() {
    let originals = reference_frames();
    let bytes = segment_bytes(&originals);
    let mut rng = DetRng::seed_from_u64(0x5747_414c); // "WAL"
    for _case in 0..2000 {
        let mut corrupt = bytes.clone();
        let flips = 1 + (rng.next_u64() % 4) as usize;
        for _ in 0..flips {
            let pos = (rng.next_u64() % corrupt.len() as u64) as usize;
            let bit = rng.next_u64() % 8;
            corrupt[pos] ^= 1 << bit;
        }
        let scanned = scan(&corrupt);
        assert_no_morph(&scanned.frames, &originals, "byte flip");
    }
}

#[test]
fn random_truncations_keep_exactly_the_intact_prefix() {
    let originals = reference_frames();
    let bytes = segment_bytes(&originals);
    let mut rng = DetRng::seed_from_u64(0x5452_554e); // "TRUN"
    for _case in 0..2000 {
        let cut = (rng.next_u64() % (bytes.len() as u64 + 1)) as usize;
        let scanned = scan(&bytes[..cut]);
        assert_no_morph(&scanned.frames, &originals, "truncation");
        // valid_len is a real repair point: rescanning the truncated
        // prefix yields the same frames and no tail error. (valid_len 0
        // means even the magic was torn — the opener rewrites the header
        // there instead of truncating, so there is nothing to rescan.)
        if scanned.valid_len > 0 {
            let repaired = scan(&bytes[..scanned.valid_len as usize]);
            assert!(repaired.tail_error.is_none(), "repair at {cut} not clean");
            assert_eq!(repaired.frames.len(), scanned.frames.len());
        }
    }
}

#[test]
fn combined_flip_plus_truncation_is_still_total() {
    let originals = reference_frames();
    let bytes = segment_bytes(&originals);
    let mut rng = DetRng::seed_from_u64(0xC0DE);
    for _case in 0..2000 {
        let mut corrupt = bytes.clone();
        let cut = (rng.next_u64() % (corrupt.len() as u64 + 1)) as usize;
        corrupt.truncate(cut);
        if !corrupt.is_empty() {
            let pos = (rng.next_u64() % corrupt.len() as u64) as usize;
            corrupt[pos] ^= 1 << (rng.next_u64() % 8);
        }
        let scanned = scan(&corrupt);
        assert_no_morph(&scanned.frames, &originals, "flip+truncate");
        assert!(scanned.valid_len as usize <= corrupt.len());
    }
}

#[test]
fn snapshot_corruption_is_all_or_nothing() {
    let db = reldb::movies::movies_database();
    let snap = Snapshot::capture(
        &db,
        33,
        vec![("fwd".into(), vec![0xAB; 64]), ("n2v".into(), vec![1, 2])],
    );
    let bytes = snap.encode();
    let mut rng = DetRng::seed_from_u64(0x534e_4150); // "SNAP"
    for _case in 0..2000 {
        let mut corrupt = bytes.clone();
        if rng.next_u64().is_multiple_of(2) {
            let cut = (rng.next_u64() % (corrupt.len() as u64 + 1)) as usize;
            corrupt.truncate(cut);
        }
        if !corrupt.is_empty() {
            let pos = (rng.next_u64() % corrupt.len() as u64) as usize;
            corrupt[pos] ^= 1 << (rng.next_u64() % 8);
        }
        // The only acceptable success is the untouched original: the
        // flip landed on a bit that cancelled out (impossible with one
        // flip, possible when truncation removed the flipped region).
        if let Ok(decoded) = Snapshot::decode(&corrupt) {
            assert_eq!(decoded, snap, "corruption morphed a snapshot");
        }
    }
}
