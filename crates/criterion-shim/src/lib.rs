//! A tiny, dependency-free stand-in for the subset of the
//! [criterion](https://docs.rs/criterion) API that `crates/bench` uses.
//!
//! The build environment of this repository is fully offline, so the real
//! criterion crate (and its large dependency tree) cannot be fetched. The
//! bench sources keep criterion idiom verbatim — `criterion_group!`,
//! `criterion_main!`, `Criterion::benchmark_group`, `Bencher::iter`,
//! `iter_batched`, `BenchmarkId` — and `crates/bench/Cargo.toml` aliases
//! this package as `criterion`. Swapping back to the real harness later is
//! a one-line manifest change.
//!
//! Measurement model: per benchmark, one calibration run picks an iteration
//! count that makes a sample take ≥ ~10 ms, then `sample_size` samples are
//! timed and the mean / median / min nanoseconds-per-iteration reported.
//! When `STEMBED_BENCH_JSON` is set, all results are additionally written
//! to that path as a JSON array (consumed by `scripts/bench.sh`).

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target minimum wall time per timed sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(10);

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark group name.
    pub group: String,
    /// Benchmark id within the group (function name / parameter).
    pub id: String,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample.
    pub iters: u64,
}

/// Collects benchmark results; the `criterion_main!`-generated `main`
/// finalizes and prints/writes the summary.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Top-level `bench_function` (criterion allows skipping the group).
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("crate");
        group.bench_function(id, f);
        group.finish();
    }

    /// All collected results (ordered by execution).
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Print the summary table and, when `STEMBED_BENCH_JSON` is set, write
    /// the JSON report. Called by the `criterion_main!` expansion.
    pub fn final_summary(&self) {
        println!("\n{:<52} {:>14} {:>14}", "benchmark", "median", "mean");
        for r in &self.results {
            println!(
                "{:<52} {:>14} {:>14}",
                format!("{}/{}", r.group, r.id),
                format_ns(r.median_ns),
                format_ns(r.mean_ns),
            );
        }
        if let Ok(path) = std::env::var("STEMBED_BENCH_JSON") {
            if !path.is_empty() {
                let json = self.to_json();
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("criterion-shim: cannot write {path}: {e}");
                } else {
                    println!("\nwrote {path}");
                }
            }
        }
    }

    fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "  {{\"group\": \"{}\", \"id\": \"{}\", \"mean_ns\": {:.1}, \
                 \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"samples\": {}, \"iters\": {}}}",
                escape(&r.group),
                escape(&r.id),
                r.mean_ns,
                r.median_ns,
                r.min_ns,
                r.samples,
                r.iters,
            ));
        }
        out.push_str("\n]\n");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (criterion default: 100; shim
    /// default: 10 — these are macro-benchmarks).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Measure a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        self.record(id.into(), bencher);
        self
    }

    /// Measure a closure parameterised by an input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        self.record(id.to_string(), bencher);
        self
    }

    /// Close the group (accepted for API parity; results are already
    /// recorded eagerly).
    pub fn finish(self) {}

    fn record(&mut self, id: String, bencher: Bencher) {
        let Some(summary) = bencher.summarize() else {
            return;
        };
        let (mean_ns, median_ns, min_ns, samples, iters) = summary;
        println!(
            "{}/{}: median {} (mean {}, {} samples × {} iters)",
            self.name,
            id,
            format_ns(median_ns),
            format_ns(mean_ns),
            samples,
            iters
        );
        self.criterion.results.push(BenchResult {
            group: self.name.clone(),
            id,
            mean_ns,
            median_ns,
            min_ns,
            samples,
            iters,
        });
    }
}

/// Benchmark id: function name plus a parameter, rendered `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            param: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.name, self.param)
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`]; the shim treats all
/// variants as "one routine call per measurement".
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state (cloned databases, trained models, …).
    LargeInput,
}

/// Times closures; handed to the benchmark body.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
    iters: u64,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            samples_ns: Vec::new(),
            iters: 1,
        }
    }

    /// Time `f`, auto-calibrating the per-sample iteration count.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Calibration run (also warms caches).
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (SAMPLE_TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        self.iters = iters;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Time `routine` on fresh `setup` output each iteration; setup is not
    /// timed. One routine call per sample (the workloads here are ≫ timer
    /// resolution).
    pub fn iter_batched<S, O, FS, FR>(&mut self, mut setup: FS, mut routine: FR, _size: BatchSize)
    where
        FS: FnMut() -> S,
        FR: FnMut(S) -> O,
    {
        self.iters = 1;
        // Warm-up, untimed.
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples_ns.push(t.elapsed().as_nanos() as f64);
        }
    }

    fn summarize(&self) -> Option<(f64, f64, f64, usize, u64)> {
        if self.samples_ns.is_empty() {
            return None;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        let median = sorted[sorted.len() / 2];
        Some((mean, median, sorted[0], sorted.len(), self.iters))
    }
}

/// Mirror of criterion's `criterion_group!`: defines a function running the
/// listed benchmarks against a shared [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Mirror of criterion's `criterion_main!`: generates `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("busy", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("param", 7), &7usize, |b, &x| {
            b.iter(|| x * 2);
        });
        g.finish();
        assert_eq!(c.results().len(), 2);
        assert!(c.results()[0].mean_ns > 0.0);
        assert_eq!(c.results()[1].id, "param/7");
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput);
        });
        g.finish();
        assert_eq!(c.results().len(), 1);
        assert_eq!(c.results()[0].samples, 2);
    }

    #[test]
    fn json_is_wellformed_enough() {
        let mut c = Criterion::default();
        c.results.push(BenchResult {
            group: "a\"b".into(),
            id: "x".into(),
            mean_ns: 1.0,
            median_ns: 1.0,
            min_ns: 1.0,
            samples: 1,
            iters: 1,
        });
        let j = c.to_json();
        assert!(j.contains("a\\\"b"));
        assert!(j.trim_start().starts_with('['));
        assert!(j.trim_end().ends_with(']'));
    }
}
