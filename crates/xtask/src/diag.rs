//! rustc-style diagnostic rendering and the `--waivers` JSON dump.

use crate::rules::{Finding, Rule, Waiver};
use std::fmt::Write as _;

/// Render one finding the way rustc renders an error:
///
/// ```text
/// error[xtask::nondeterministic-iter]: iteration over hash-ordered container `facts`
///   --> crates/core/src/distcache.rs:244:49
///     |
/// 244 |         let mut seen: Vec<&WalkScheme> = self.facts.keys().collect();
///     |                                                     ^^^^^
///     = help: iterate a BTreeMap/sorted Vec instead, …
/// ```
///
/// Findings that span an item body (`end_line > line`) add a
/// `span continues through line N` note after the caret.
pub fn render(f: &Finding) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "error[xtask::{}]: {}", f.rule.name(), f.message);
    let _ = writeln!(s, "  --> {}:{}:{}", f.file, f.line, f.col);
    let gutter = f.line.to_string().len().max(3);
    let _ = writeln!(s, "{:gutter$} |", "");
    let _ = writeln!(s, "{:>gutter$} | {}", f.line, f.snippet.trim_end());
    // Caret under the column (tabs in the snippet render as one char).
    let caret_pad: usize = f.col.saturating_sub(1);
    let _ = writeln!(s, "{:gutter$} | {:caret_pad$}^", "", "");
    if f.end_line > f.line {
        let _ = writeln!(
            s,
            "{:gutter$} = note: span continues through line {}",
            "", f.end_line
        );
    }
    let _ = writeln!(s, "{:gutter$} = help: {}", "", f.rule.help());
    s
}

/// Version of the `--waivers` JSON shape. Bump when the structure changes;
/// the snapshot test in `tests/fixtures.rs` pins the exact rendering.
pub const WAIVERS_SCHEMA_VERSION: u32 = 2;

/// The `--waivers` audit output: a versioned object carrying the total,
/// per-rule counts (every rule, zeroes included, so a new rule changes the
/// shape visibly), and one entry per waiver.
pub fn waivers_json(waivers: &[Waiver]) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"schema_version\": {WAIVERS_SCHEMA_VERSION},");
    let _ = writeln!(s, "  \"total\": {},", waivers.len());
    s.push_str("  \"counts\": {\n");
    let rules = Rule::all();
    for (i, rule) in rules.iter().enumerate() {
        let n = waivers.iter().filter(|w| w.rule == *rule).count();
        let _ = write!(s, "    {}: {}", json_str(rule.name()), n);
        s.push_str(if i + 1 < rules.len() { ",\n" } else { "\n" });
    }
    s.push_str("  },\n");
    s.push_str("  \"waivers\": [\n");
    for (i, w) in waivers.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"reason\": {}}}",
            json_str(&w.file),
            w.line,
            json_str(w.rule.name()),
            json_str(&w.reason),
        );
        s.push_str(if i + 1 < waivers.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}");
    s
}

fn json_str(v: &str) -> String {
    let mut s = String::with_capacity(v.len() + 2);
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_rustc_shaped() {
        let f = Finding {
            rule: Rule::AmbientTime,
            file: "crates/core/src/x.rs".into(),
            line: 7,
            end_line: 7,
            col: 13,
            message: "ambient wall-clock read".into(),
            snippet: "    let t = Instant::now();".into(),
        };
        let r = render(&f);
        assert!(r.starts_with("error[xtask::ambient-time]:"));
        assert!(r.contains("--> crates/core/src/x.rs:7:13"));
        assert!(r.contains("  7 |     let t = Instant::now();"));
        assert!(!r.contains("span continues"));
    }

    #[test]
    fn render_multi_line_span_notes_the_end() {
        let f = Finding {
            rule: Rule::UnjournalledMutation,
            file: "crates/reldb/src/database.rs".into(),
            line: 100,
            end_line: 112,
            col: 5,
            message: "writes fact storage without journalling".into(),
            snippet: "    pub fn poke(&mut self) {".into(),
        };
        let r = render(&f);
        assert!(r.contains("--> crates/reldb/src/database.rs:100:5"));
        assert!(r.contains("= note: span continues through line 112"));
        // The note sits between the caret and the help line.
        let note = r.find("span continues").unwrap();
        let help = r.find("= help:").unwrap();
        assert!(note < help);
    }

    #[test]
    fn json_escapes() {
        let w = Waiver {
            rule: Rule::EnvRead,
            file: "a\"b.rs".into(),
            line: 1,
            reason: "line\nbreak".into(),
        };
        let j = waivers_json(&[w]);
        assert!(j.contains("\"a\\\"b.rs\""));
        assert!(j.contains("line\\nbreak"));
        assert!(j.contains("\"schema_version\": 2"));
        assert!(j.contains("\"env-read\": 1"));
        assert!(j.contains("\"panic-path\": 0"));
    }
}
