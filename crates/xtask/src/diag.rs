//! rustc-style diagnostic rendering and the `--waivers` JSON dump.

use crate::rules::{Finding, Waiver};
use std::fmt::Write as _;

/// Render one finding the way rustc renders an error:
///
/// ```text
/// error[xtask::nondeterministic-iter]: iteration over hash-ordered container `facts`
///   --> crates/core/src/distcache.rs:244:49
///     |
/// 244 |         let mut seen: Vec<&WalkScheme> = self.facts.keys().collect();
///     |                                                     ^^^^^
///     = help: iterate a BTreeMap/sorted Vec instead, …
/// ```
pub fn render(f: &Finding) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "error[xtask::{}]: {}", f.rule.name(), f.message);
    let _ = writeln!(s, "  --> {}:{}:{}", f.file, f.line, f.col);
    let gutter = f.line.to_string().len().max(3);
    let _ = writeln!(s, "{:gutter$} |", "");
    let _ = writeln!(s, "{:>gutter$} | {}", f.line, f.snippet.trim_end());
    // Caret under the column (tabs in the snippet render as one char).
    let caret_pad: usize = f.col.saturating_sub(1);
    let _ = writeln!(s, "{:gutter$} | {:caret_pad$}^", "", "");
    let _ = writeln!(s, "{:gutter$} = help: {}", "", f.rule.help());
    s
}

/// The `--waivers` audit output: a JSON array, one object per waiver.
pub fn waivers_json(waivers: &[Waiver]) -> String {
    let mut s = String::from("[\n");
    for (i, w) in waivers.iter().enumerate() {
        let _ = write!(
            s,
            "  {{\"file\": {}, \"line\": {}, \"rule\": {}, \"reason\": {}}}",
            json_str(&w.file),
            w.line,
            json_str(w.rule.name()),
            json_str(&w.reason),
        );
        s.push_str(if i + 1 < waivers.len() { ",\n" } else { "\n" });
    }
    s.push(']');
    s
}

fn json_str(v: &str) -> String {
    let mut s = String::with_capacity(v.len() + 2);
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    #[test]
    fn render_is_rustc_shaped() {
        let f = Finding {
            rule: Rule::AmbientTime,
            file: "crates/core/src/x.rs".into(),
            line: 7,
            col: 13,
            message: "ambient wall-clock read".into(),
            snippet: "    let t = Instant::now();".into(),
        };
        let r = render(&f);
        assert!(r.starts_with("error[xtask::ambient-time]:"));
        assert!(r.contains("--> crates/core/src/x.rs:7:13"));
        assert!(r.contains("  7 |     let t = Instant::now();"));
    }

    #[test]
    fn json_escapes() {
        let w = Waiver {
            rule: Rule::EnvRead,
            file: "a\"b.rs".into(),
            line: 1,
            reason: "line\nbreak".into(),
        };
        let j = waivers_json(&[w]);
        assert!(j.contains("\"a\\\"b.rs\""));
        assert!(j.contains("line\\nbreak"));
    }
}
