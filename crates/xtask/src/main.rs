//! `cargo xtask <command>` entry point (wired through `[alias]` in
//! `.cargo/config.toml`).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some(other) => {
            eprintln!("unknown xtask command `{other}`");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage: cargo xtask lint [--waivers] [--summary] [--quiet] [--root PATH]

  lint        run the determinism-contract static analyzer over the
              workspace (see STATIC_ANALYSIS.md)
  --waivers   print the active waivers as JSON on stdout (audit view)
  --summary   print a per-rule violation/waiver table on stdout
  --quiet     suppress per-violation diagnostics, print the summary only
  --root PATH lint PATH instead of the enclosing workspace";

fn lint(args: &[String]) -> ExitCode {
    let mut waivers_json = false;
    let mut summary = false;
    let mut quiet = false;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--waivers" => waivers_json = true,
            "--summary" => summary = true,
            "--quiet" => quiet = true,
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown lint flag `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    // `cargo xtask` runs with cwd = workspace root; fall back to the
    // manifest-relative root for direct `cargo run -p xtask` invocations.
    let root = root.unwrap_or_else(|| {
        let cwd = std::env::current_dir().expect("cwd");
        if cwd.join("Cargo.toml").exists() {
            cwd
        } else {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .canonicalize()
                .expect("workspace root")
        }
    });

    let report = match xtask::lint_root(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask lint: i/o error: {e}");
            return ExitCode::from(2);
        }
    };

    if !quiet {
        for f in &report.findings {
            eprint!("{}", xtask::diag::render(f));
            eprintln!();
        }
    }
    if waivers_json {
        println!("{}", xtask::diag::waivers_json(&report.waivers));
    }
    if summary {
        println!("rule                        violations  waivers");
        for rule in xtask::rules::Rule::all() {
            let v = report.findings.iter().filter(|f| f.rule == rule).count();
            let w = report.waivers.iter().filter(|w| w.rule == rule).count();
            println!("{:<28}{v:>10}  {w:>7}", rule.name());
        }
    }
    eprintln!(
        "xtask lint: {} file(s) scanned, {} violation(s), {} waiver(s) in effect",
        report.files_scanned,
        report.findings.len(),
        report.waivers.len()
    );
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
