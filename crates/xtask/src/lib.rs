//! `cargo xtask` — workspace automation for the stembed repo.
//!
//! The one subcommand so far is `lint`: a dependency-free static analyzer
//! that enforces the workspace's determinism contract (bit-identical output
//! at any `STEMBED_SHARDS`, retained ≡ fresh, fixed float lane order,
//! byte-identical crash recovery) at the source level, before the property
//! tests ever run. See `STATIC_ANALYSIS.md` at the repo root for the rule
//! catalogue, rationale, and waiver syntax.
//!
//! The analyzer is deliberately `syn`-free: the container vendors no
//! external crates, so the scanner in [`lexer`] strips comments and
//! literals itself and the rules in [`rules`] work on that blanked view.
//! The trade-off is documented per rule — token-level passes
//! over-approximate (every flag is waivable with a stated reason) and
//! under-approximate in known ways (no type inference across files).

pub mod diag;
pub mod lexer;
pub mod rules;

use rules::{Finding, Waiver};
use std::path::{Path, PathBuf};

/// Result of linting a tree.
pub struct Report {
    pub findings: Vec<Finding>,
    pub waivers: Vec<Waiver>,
    pub files_scanned: usize,
}

/// Directories never descended into.
const SKIP_DIRS: [&str; 4] = ["target", ".git", ".github", "fixtures"];

/// Lint every `.rs` file under `root` (the workspace checkout).
pub fn lint_root(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    collect_rs(root, root, &mut files)?;
    files.sort();
    let mut report = Report {
        findings: Vec::new(),
        waivers: Vec::new(),
        files_scanned: 0,
    };
    for rel in files {
        let src = std::fs::read_to_string(root.join(&rel))?;
        let rel_str = rel
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        let (mut f, mut w) = lint_source(&rel_str, &src);
        report.findings.append(&mut f);
        report.waivers.append(&mut w);
        report.files_scanned += 1;
    }
    Ok(report)
}

/// Lint one file's contents under its workspace-relative path (pure — the
/// fixture tests call this directly).
pub fn lint_source(rel_path: &str, source: &str) -> (Vec<Finding>, Vec<Waiver>) {
    let parsed = lexer::FileSource::parse(source);
    rules::check_file(rel_path, &parsed)
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path.strip_prefix(root).unwrap_or(&path).to_path_buf());
        }
    }
    Ok(())
}
