//! `cargo xtask` — workspace automation for the stembed repo.
//!
//! The one subcommand so far is `lint`: a dependency-free static analyzer
//! that enforces the workspace's determinism contract (bit-identical output
//! at any `STEMBED_SHARDS`, retained ≡ fresh, fixed float lane order,
//! byte-identical crash recovery) at the source level, before the property
//! tests ever run. See `STATIC_ANALYSIS.md` at the repo root for the rule
//! catalogue, rationale, and waiver syntax.
//!
//! The analyzer is deliberately `syn`-free: the container vendors no
//! external crates, so the scanner in [`lexer`] strips comments and
//! literals itself. Two layers run on that blanked view: the workspace
//! symbol [`index`] (declarations from every file, resolved across files)
//! feeds the per-file [`dataflow`] walker, and the rules in [`rules`]
//! consume both. The trade-off is documented per rule — token-level passes
//! over-approximate (every flag is waivable with a stated reason) and the
//! remaining under-approximations are listed in `STATIC_ANALYSIS.md`.

pub mod dataflow;
pub mod diag;
pub mod index;
pub mod lexer;
pub mod rules;

use rules::{Finding, Waiver};
use std::path::{Path, PathBuf};

/// Result of linting a tree.
pub struct Report {
    pub findings: Vec<Finding>,
    pub waivers: Vec<Waiver>,
    pub files_scanned: usize,
}

/// Directories never descended into.
const SKIP_DIRS: [&str; 4] = ["target", ".git", ".github", "fixtures"];

/// Lint every `.rs` file under `root` (the workspace checkout). Two-pass:
/// every file is parsed and indexed first so cross-file resolution (helper
/// returns, scalar siblings in sibling modules) sees the whole workspace,
/// then each file is checked against the shared index.
pub fn lint_root(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    collect_rs(root, root, &mut files)?;
    files.sort();
    let mut sources: Vec<(String, String)> = Vec::with_capacity(files.len());
    for rel in files {
        let src = std::fs::read_to_string(root.join(&rel))?;
        let rel_str = rel
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        sources.push((rel_str, src));
    }
    let borrowed: Vec<(&str, &str)> = sources
        .iter()
        .map(|(p, s)| (p.as_str(), s.as_str()))
        .collect();
    let (findings, waivers) = lint_files(&borrowed);
    Ok(Report {
        findings,
        waivers,
        files_scanned: sources.len(),
    })
}

/// Lint a set of `(workspace-relative path, contents)` pairs against a
/// symbol index built from exactly those files (pure — the cross-file
/// fixture tests call this directly).
pub fn lint_files(files: &[(&str, &str)]) -> (Vec<Finding>, Vec<Waiver>) {
    let parsed: Vec<(&str, lexer::FileSource)> = files
        .iter()
        .map(|(p, s)| (*p, lexer::FileSource::parse(s)))
        .collect();
    let index_input: Vec<(&str, &lexer::FileSource)> =
        parsed.iter().map(|(p, src)| (*p, src)).collect();
    let idx = index::WorkspaceIndex::build(&index_input);
    let mut findings = Vec::new();
    let mut waivers = Vec::new();
    for (rel, src) in &parsed {
        let (mut f, mut w) = rules::check_file(rel, src, &idx);
        findings.append(&mut f);
        waivers.append(&mut w);
    }
    (findings, waivers)
}

/// Lint one file's contents under its workspace-relative path, with the
/// index built from that file alone (pure — the single-file fixture tests
/// call this directly).
pub fn lint_source(rel_path: &str, source: &str) -> (Vec<Finding>, Vec<Waiver>) {
    lint_files(&[(rel_path, source)])
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path.strip_prefix(root).unwrap_or(&path).to_path_buf());
        }
    }
    Ok(())
}
