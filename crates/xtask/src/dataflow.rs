//! Intra-procedural dataflow tags: what a binding *is*, traced through
//! `let` chains and helper-call returns.
//!
//! The per-file pass collects four tag sets over the blanked code view:
//!
//! * **hash** — bindings whose type or provenance reaches a
//!   `HashMap`/`HashSet` (including through type aliases and, via the
//!   [`WorkspaceIndex`], through helper functions declared in *other* files
//!   whose return type is a hash container);
//! * **seed** — bindings assigned from seed-producing helpers
//!   (`let s = derive_seed(m, 7); s ^ 1` is the laundering the
//!   seed-arithmetic rule must still see). Names that *pattern*-match a
//!   seed (`seed`, `*_seed`, `seed_*`) are recognised at the use site by
//!   [`is_seedy_name`] and need no tracking;
//! * **float** — scalar `f32`/`f64` bindings (annotated, or initialised
//!   from a float literal), the candidates for manual loop accumulation;
//! * **arrays** — bindings of fixed-size array type `[T; N]` with a
//!   literal `N`, which make literal indexing below `N` provably in
//!   bounds for the panic-path rule.
//!
//! Tags are name-scoped per file (no shadowing analysis) — the same
//! over-approximation the PR 8 rules already document, now with one less
//! blind spot: provenance survives `let` renaming and helper calls.

use crate::index::WorkspaceIndex;
use crate::lexer::{is_ident_char, FileSource};

/// Does an identifier name a seed by convention?
pub fn is_seedy_name(name: &str) -> bool {
    name == "seed" || name.ends_with("_seed") || name.starts_with("seed_")
}

/// Per-file binding tags. Query with the `is_*` accessors.
#[derive(Debug, Default)]
pub struct Bindings {
    hash: Vec<String>,
    seed: Vec<String>,
    float: Vec<String>,
    arrays: Vec<(String, usize)>,
    /// Same-file `const NAME: usize = N;` values, so `[T; LANES]` bounds
    /// resolve to a number.
    int_consts: Vec<(String, usize)>,
    /// Hash container type names in scope: `HashMap`/`HashSet` plus local
    /// aliases whose RHS mentions one.
    pub hash_types: Vec<String>,
}

impl Bindings {
    pub fn is_hash(&self, name: &str) -> bool {
        self.hash.iter().any(|n| n == name)
    }

    /// Seedy by name pattern or by tracked provenance.
    pub fn is_seed(&self, name: &str) -> bool {
        is_seedy_name(name) || self.seed.iter().any(|n| n == name)
    }

    pub fn is_float(&self, name: &str) -> bool {
        self.float.iter().any(|n| n == name)
    }

    /// Fixed-size array length when the binding has one.
    pub fn array_len(&self, name: &str) -> Option<usize> {
        self.arrays
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, len)| len)
    }

    fn tag_hash(&mut self, name: &str) {
        if !name.is_empty() && name != "_" && !self.is_hash(name) {
            self.hash.push(name.to_string());
        }
    }

    fn tag_seed(&mut self, name: &str) {
        if !name.is_empty() && name != "_" && !self.seed.iter().any(|n| n == name) {
            self.seed.push(name.to_string());
        }
    }

    fn tag_float(&mut self, name: &str) {
        if !name.is_empty() && name != "_" && !self.is_float(name) {
            self.float.push(name.to_string());
        }
    }
}

/// Run the tagging pass over one file.
pub fn analyze(src: &FileSource, index: &WorkspaceIndex) -> Bindings {
    let code = &src.code;
    let chars: Vec<char> = code.chars().collect();
    let mut b = Bindings {
        hash_types: vec!["HashMap".into(), "HashSet".into()],
        ..Bindings::default()
    };

    // 0. Same-file integer consts (`const LANES: usize = 8;`) — array
    // bounds written with a named length resolve through these.
    for off in word_occurrences(code, "const") {
        let rest: String = chars[off + 5..].iter().take(120).collect();
        let rest = rest.trim_start();
        let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
        if name.is_empty() {
            continue;
        }
        let Some(eq) = rest.find('=') else {
            continue;
        };
        let val: String = rest[eq + 1..]
            .trim_start()
            .chars()
            .take_while(|&c| c.is_ascii_digit() || c == '_')
            .collect();
        if let Ok(n) = val.replace('_', "").parse::<usize>() {
            b.int_consts.push((name, n));
        }
    }

    // 1. Type aliases whose RHS mentions a hash container.
    for off in word_occurrences(code, "type") {
        let rest: String = chars[off + 4..].iter().take(200).collect();
        let rest = rest.trim_start();
        let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
        if name.is_empty() {
            continue;
        }
        if let Some(eq) = rest.find('=') {
            let rhs: String = rest[eq..].chars().take_while(|&c| c != ';').collect();
            if mentions_hash(&rhs, &b.hash_types) {
                b.hash_types.push(name);
            }
        }
    }

    // 2. `name : Type` — fields, params, annotated lets.
    let mut i = 0usize;
    while i < chars.len() {
        if chars[i] == ':'
            && i + 1 < chars.len()
            && chars[i + 1] != ':'
            && (i == 0 || chars[i - 1] != ':')
        {
            // Identifier to the left.
            let mut e = i;
            while e > 0 && chars[e - 1].is_whitespace() {
                e -= 1;
            }
            let mut s = e;
            while s > 0 && is_ident_char(chars[s - 1]) {
                s -= 1;
            }
            if s < e {
                let name: String = chars[s..e].iter().collect();
                // Type text to the right, up to a depth-0 terminator.
                let mut j = i + 1;
                let mut angle = 0i32;
                let mut paren = 0i32;
                let mut ty = String::new();
                while j < chars.len() && ty.chars().count() < 300 {
                    let c = chars[j];
                    match c {
                        '<' => angle += 1,
                        '>' => angle -= 1,
                        '(' | '[' => paren += 1,
                        ')' | ']' if paren > 0 => paren -= 1,
                        ',' | ';' | '=' | '{' | '}' | ')' | ']' if angle <= 0 && paren <= 0 => {
                            break
                        }
                        _ => {}
                    }
                    ty.push(c);
                    j += 1;
                }
                classify_annotation(&mut b, &name, &ty);
            }
        }
        i += 1;
    }

    // 3. `let [mut] name = RHS` — initialisers and propagation, in textual
    // order so let-chains resolve top-down.
    for off in word_occurrences(code, "let") {
        let rest: String = chars[off + 3..].iter().take(300).collect();
        let rest = rest.trim_start();
        let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
        let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
        if name.is_empty() {
            continue;
        }
        let after = rest[name.len()..].trim_start();
        // Annotated lets were handled by the `:` pass; here only `=`.
        let Some(rhs) = after.strip_prefix('=') else {
            continue;
        };
        let rhs = rhs.trim_start();
        classify_initializer(&mut b, index, &name, rhs);
    }

    b
}

/// Tag `name` from its type annotation text.
fn classify_annotation(b: &mut Bindings, name: &str, ty: &str) {
    if mentions_hash(ty, &b.hash_types) {
        b.tag_hash(name);
    }
    let scalar = ty
        .trim()
        .trim_start_matches('&')
        .trim_start()
        .trim_start_matches("mut ")
        .trim();
    if scalar == "f32" || scalar == "f64" {
        b.tag_float(name);
    }
    // `[T; N]` with a literal (or same-file const) length.
    if let Some(len) = array_literal_len(ty, &b.int_consts) {
        if !name.is_empty() && name != "_" {
            b.arrays.push((name.to_string(), len));
        }
    }
}

/// Tag `name` from its initialiser expression text.
fn classify_initializer(b: &mut Bindings, index: &WorkspaceIndex, name: &str, rhs: &str) {
    // `Hash::new()`-style constructor paths.
    let head: String = rhs
        .chars()
        .take_while(|&c| is_ident_char(c) || c == ':')
        .collect();
    let segs: Vec<&str> = head.split("::").collect();
    if segs.len() >= 2 {
        let head_ty = segs[segs.len() - 2];
        if b.hash_types.iter().any(|t| t == head_ty) {
            b.tag_hash(name);
            return;
        }
    }

    // Statement text up to the terminating `;` at bracket depth 0 — the
    // `;` inside an array literal `[0.0; 8]` is part of the initialiser,
    // and tags must not leak across statements.
    let mut stmt = String::new();
    let mut depth = 0i32;
    for c in rhs.chars() {
        match c {
            '[' | '(' | '{' => depth += 1,
            ']' | ')' | '}' => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            ';' if depth == 0 => break,
            _ => {}
        }
        stmt.push(c);
    }
    let stmt = stmt;

    // Plain-identifier copy/move (possibly `&x` / `x.clone()`): propagate.
    let bare = stmt.trim().trim_start_matches('&').trim_start();
    let bare = bare.strip_suffix(".clone()").unwrap_or(bare);
    if !bare.is_empty() && bare.chars().all(is_ident_char) {
        if b.is_hash(bare) {
            b.tag_hash(name);
        }
        if b.is_seed(bare) {
            b.tag_seed(name);
        }
        if b.is_float(bare) {
            b.tag_float(name);
        }
        if let Some(len) = b.array_len(bare) {
            b.arrays.push((name.to_string(), len));
        }
        return;
    }

    // Call result: `helper(...)`, `path::helper(...)`, `x.helper(...)` —
    // classify via the callee's indexed return type.
    if let Some(paren) = stmt.find('(') {
        let prefix = &stmt[..paren];
        let callee: String = prefix
            .chars()
            .rev()
            .take_while(|&c| is_ident_char(c))
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect();
        if !callee.is_empty() {
            if index.returns_hash(&callee) {
                b.tag_hash(name);
            }
            if index.returns_seed(&callee) {
                b.tag_seed(name);
            }
        }
    }

    // Float-literal initialiser: `0.0`, `1e-9`, `0f32`, `2.5f64`.
    let tok: String = stmt
        .trim()
        .trim_start_matches('-')
        .chars()
        .take_while(|&c| is_ident_char(c) || c == '.')
        .collect();
    if tok.chars().next().is_some_and(|c| c.is_ascii_digit())
        && (tok.contains('.') || tok.ends_with("f32") || tok.ends_with("f64"))
        && tok == stmt.trim().trim_start_matches('-')
    {
        b.tag_float(name);
    }

    // Array-literal initialiser: `[expr; N]`.
    if let Some(len) = array_literal_len(stmt.trim(), &b.int_consts) {
        if !name.is_empty() && name != "_" {
            b.arrays.push((name.to_string(), len));
        }
    }
}

/// `[T; N]` / `[expr; N]` → `Some(N)` when `N` is a decimal literal or a
/// same-file integer const.
fn array_literal_len(text: &str, int_consts: &[(String, usize)]) -> Option<usize> {
    let t = text.trim();
    let t = t.trim_start_matches('&').trim_start();
    if !t.starts_with('[') || !t.ends_with(']') {
        return None;
    }
    let inner = &t[1..t.len() - 1];
    let semi = inner.rfind(';')?;
    let n = inner[semi + 1..].trim().replace('_', "");
    if let Ok(v) = n.parse::<usize>() {
        return Some(v);
    }
    int_consts
        .iter()
        .find(|(name, _)| *name == n)
        .map(|&(_, v)| v)
}

fn mentions_hash(ty: &str, hash_types: &[String]) -> bool {
    hash_types
        .iter()
        .any(|t| !word_occurrences(ty, t).is_empty())
}

/// Offsets (in chars) of word-boundary occurrences of `word` in `code`.
pub fn word_occurrences(code: &str, word: &str) -> Vec<usize> {
    let chars: Vec<char> = code.chars().collect();
    let wchars: Vec<char> = word.chars().collect();
    let mut out = Vec::new();
    if wchars.is_empty() || chars.len() < wchars.len() {
        return out;
    }
    for i in 0..=chars.len() - wchars.len() {
        if chars[i..i + wchars.len()] == wchars[..] {
            let before_ok = i == 0 || !is_ident_char(chars[i - 1]);
            let after = chars.get(i + wchars.len());
            let after_ok = after.is_none_or(|&c| !is_ident_char(c));
            if before_ok && after_ok {
                out.push(i);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::FileSource;

    fn tags(src: &str) -> Bindings {
        let parsed = FileSource::parse(src);
        let idx = WorkspaceIndex::build(&[("f.rs", &parsed)]);
        analyze(&parsed, &idx)
    }

    fn tags_with(files: &[(&str, &str)], target: usize) -> Bindings {
        let parsed: Vec<(&str, FileSource)> = files
            .iter()
            .map(|(p, s)| (*p, FileSource::parse(s)))
            .collect();
        let refs: Vec<(&str, &FileSource)> = parsed.iter().map(|(p, s)| (*p, s)).collect();
        let idx = WorkspaceIndex::build(&refs);
        analyze(&parsed[target].1, &idx)
    }

    #[test]
    fn annotation_tags() {
        let b = tags(
            "use std::collections::HashMap;\n\
             struct S { by_key: HashMap<u32, u32>, s: [u64; 4], lr: f64 }\n\
             fn f(m: &HashMap<u32, u32>, seed_x: u64) {}\n",
        );
        assert!(b.is_hash("by_key") && b.is_hash("m"));
        assert_eq!(b.array_len("s"), Some(4));
        assert!(b.is_float("lr"));
        assert!(b.is_seed("seed_x"), "pattern name needs no tracking");
        assert!(b.is_seed("seed") && b.is_seed("shard_seed"));
        assert!(!b.is_seed("seeds"));
    }

    #[test]
    fn let_chain_propagation() {
        let b = tags(
            "use std::collections::HashMap;\n\
             fn f() {\n\
                 let m = HashMap::new();\n\
                 let alias = m;\n\
                 let r = &alias;\n\
                 let mut acc = 0.0;\n\
                 let acc2 = acc;\n\
             }\n",
        );
        assert!(b.is_hash("m") && b.is_hash("alias") && b.is_hash("r"));
        assert!(b.is_float("acc") && b.is_float("acc2"));
    }

    #[test]
    fn helper_return_resolution_crosses_files() {
        let b = tags_with(
            &[
                (
                    "helpers.rs",
                    "use std::collections::HashMap;\n\
                     pub fn by_key() -> HashMap<u32, u32> { HashMap::new() }\n\
                     pub fn derive_seed(m: u64, s: u64) -> u64 { 0 }\n",
                ),
                (
                    "use.rs",
                    "fn g(x: u64) {\n\
                         let groups = crate::helpers::by_key();\n\
                         let laundered = derive_seed(x, 7);\n\
                     }\n",
                ),
            ],
            1,
        );
        assert!(b.is_hash("groups"), "helper-returned HashMap must tag");
        assert!(b.is_seed("laundered"), "seed provenance must survive a let");
    }

    #[test]
    fn array_literal_initialiser() {
        let b = tags("fn f() { let acc = [0.0f64; 8]; acc[7]; }\n");
        assert_eq!(b.array_len("acc"), Some(8));
    }

    #[test]
    fn statement_boundaries_do_not_leak() {
        let b = tags("fn f(seed: u64) { let x = 1; let y = x; }\n");
        assert!(!b.is_seed("x") && !b.is_seed("y"));
        assert!(!b.is_float("x"));
    }
}
