//! The determinism-contract rules.
//!
//! Every rule is a token-level pass over a [`FileSource`]; see
//! `STATIC_ANALYSIS.md` at the repo root for the contract each rule
//! enforces, its known approximations, and the waiver syntax.

use crate::dataflow::{self, Bindings};
use crate::index::{Receiver, WorkspaceIndex};
use crate::lexer::{is_ident_char, FileSource};

/// Rule identifiers. The kebab-case name doubles as the waiver tag:
/// `// lint: <name>-ok(reason)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Iteration over `std::collections::HashMap`/`HashSet` (RandomState
    /// order) in a compute/state crate.
    NondeterministicIter,
    /// `std::time::{SystemTime, Instant}` in a compute/state crate.
    AmbientTime,
    /// `std::collections::hash_map::RandomState` anywhere.
    RandomState,
    /// Direct `rand`-crate usage bypassing the vendored seeded RNG.
    RandCrate,
    /// `std::env` read outside the documented `STEMBED_*` allowlist.
    EnvRead,
    /// `unsafe` block/fn/impl without a `SAFETY:` comment.
    UndocumentedUnsafe,
    /// `#[target_feature]` fn without a scalar reference sibling.
    MissingScalarSibling,
    /// f32/f64 `sum()`/`fold` reduction outside the fixed-lane kernels.
    UnfusedFloatReduction,
    /// Hand arithmetic (`+`/`^`/shifts/`wrapping_*`) on a seed-derived
    /// value outside the sanctioned derivation layer (the PR 3 stream
    /// overlap bug class).
    SeedArithmetic,
    /// An `&mut self` method on `Database` that writes fact storage
    /// without journalling through `record_mutation` (the PR 4/7
    /// journal/epoch contract).
    UnjournalledMutation,
    /// A float `+=`/`-=`/`*=` accumulator inside a loop over a
    /// hash-ordered source — reassociation the fixed-lane kernels exist
    /// to prevent.
    ManualFloatAccumulation,
    /// `unwrap`/`expect`/`panic!`/literal indexing in compute-crate
    /// production code without a documented panic contract.
    PanicPath,
}

impl Rule {
    pub fn name(self) -> &'static str {
        match self {
            Rule::NondeterministicIter => "nondeterministic-iter",
            Rule::AmbientTime => "ambient-time",
            Rule::RandomState => "random-state",
            Rule::RandCrate => "rand-crate",
            Rule::EnvRead => "env-read",
            Rule::UndocumentedUnsafe => "undocumented-unsafe",
            Rule::MissingScalarSibling => "missing-scalar-sibling",
            Rule::UnfusedFloatReduction => "unfused-float-reduction",
            Rule::SeedArithmetic => "seed-arithmetic",
            Rule::UnjournalledMutation => "unjournalled-mutation",
            Rule::ManualFloatAccumulation => "manual-float-accumulation",
            Rule::PanicPath => "panic-path",
        }
    }

    pub fn all() -> [Rule; 12] {
        [
            Rule::NondeterministicIter,
            Rule::AmbientTime,
            Rule::RandomState,
            Rule::RandCrate,
            Rule::EnvRead,
            Rule::UndocumentedUnsafe,
            Rule::MissingScalarSibling,
            Rule::UnfusedFloatReduction,
            Rule::SeedArithmetic,
            Rule::UnjournalledMutation,
            Rule::ManualFloatAccumulation,
            Rule::PanicPath,
        ]
    }

    pub fn help(self) -> &'static str {
        match self {
            Rule::NondeterministicIter => {
                "iterate a BTreeMap/BTreeSet or a sorted Vec instead; if the order provably \
                 cannot reach any output, waive with `// lint: nondeterministic-iter-ok(reason)`"
            }
            Rule::AmbientTime => {
                "wall-clock reads belong in bench/profiling crates; timing diagnostics that \
                 never feed an output may be waived with `// lint: ambient-time-ok(reason)`"
            }
            Rule::RandomState => {
                "RandomState is seeded from the OS; use a BTree container or \
                 the vendored DetRng-derived structures"
            }
            Rule::RandCrate => {
                "use the vendored seeded RNG (stembed_runtime::rng::DetRng); \
                 direct rand-crate draws are not seed-reproducible"
            }
            Rule::EnvRead => {
                "only `STEMBED_*` environment variables are part of the documented contract; \
                 waive with `// lint: env-read-ok(reason)` for non-output-affecting reads"
            }
            Rule::UndocumentedUnsafe => {
                "add a `// SAFETY:` comment directly above, stating the exact invariant \
                 (CPU-feature gate, length precondition, Send/Sync justification)"
            }
            Rule::MissingScalarSibling => {
                "every #[target_feature] fn needs a portable reference: a `<base>_scalar` \
                 sibling (or `<base>_with`/`<base>_wide` generic body) in the same file"
            }
            Rule::UnfusedFloatReduction => {
                "route float reductions through stembed_runtime::kernel / linalg (fixed-lane \
                 order); deterministic serial reductions may be waived with \
                 `// lint: unfused-float-reduction-ok(reason)`"
            }
            Rule::SeedArithmetic => {
                "derive sub-streams with stembed_runtime::derive_seed(seed, STREAM) — hand \
                 mixing (`seed ^ SALT`, `seed.wrapping_add(i)`) risks overlapping RNG \
                 streams; name each stream with a constant instead"
            }
            Rule::UnjournalledMutation => {
                "every fact-storage write must reach the journal: call `record_mutation` \
                 (or delegate to insert/restore/delete) so the epoch, the durability hook, \
                 and cache invalidation observe the mutation"
            }
            Rule::ManualFloatAccumulation => {
                "accumulating floats over a hash-ordered source reassociates per run; \
                 iterate a sorted container, or route the reduction through the \
                 fixed-lane kernel layer"
            }
            Rule::PanicPath => {
                "document the contract: a `# Panics` doc section on the enclosing fn or a \
                 `// PANICS:` comment at the site (poisoned-hook discipline makes stray \
                 panics unrecoverable, not unsound); literal indexing is accepted when \
                 the receiver is a fixed-size array provably long enough"
            }
        }
    }
}

/// A rule violation (pre-waiver).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: Rule,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based.
    pub line: usize,
    /// 1-based, inclusive; `== line` for single-line findings. Rules that
    /// flag a whole item (e.g. an unjournalled method) span its body.
    pub end_line: usize,
    /// 1-based column (chars).
    pub col: usize,
    pub message: String,
    /// The raw source line, for the diagnostic rendering.
    pub snippet: String,
}

/// A violation silenced by a `// lint: <rule>-ok(reason)` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    pub rule: Rule,
    pub file: String,
    pub line: usize,
    pub reason: String,
}

/// Which rule families apply to a file, derived from its path.
#[derive(Debug, Clone, Copy)]
pub struct Scope {
    /// Inside one of the compute/state crates' `src/` trees.
    pub compute: bool,
    /// Exempt from the float-reduction rule (the fixed-lane kernel homes).
    pub float_exempt: bool,
}

/// Crates whose `src/` trees carry the determinism contract.
pub const COMPUTE_CRATES: [&str; 8] = [
    "crates/core",
    "crates/node2vec",
    "crates/reldb",
    "crates/dbgraph",
    "crates/linalg",
    "crates/ml",
    "crates/wal",
    "crates/runtime",
];

impl Scope {
    /// Classify a workspace-relative path (forward slashes).
    pub fn of(rel_path: &str) -> Scope {
        let compute = COMPUTE_CRATES
            .iter()
            .any(|c| rel_path.starts_with(&format!("{c}/src/")));
        let float_exempt =
            rel_path.starts_with("crates/linalg/") || rel_path == "crates/runtime/src/kernel.rs";
        Scope {
            compute,
            float_exempt,
        }
    }
}

/// Files exempt from the seed-arithmetic rule: the sanctioned derivation
/// layer itself (SplitMix64 finalizer rounds *are* seed arithmetic).
const SEED_EXEMPT_FILES: [&str; 2] = ["crates/runtime/src/seed.rs", "crates/runtime/src/rng.rs"];

/// Run every applicable rule over one file. Returns surviving findings and
/// the waivers that silenced the rest. `index` carries the cross-file
/// symbol information (possibly built from this file alone — see
/// [`crate::lint_source`]).
pub fn check_file(
    rel_path: &str,
    src: &FileSource,
    index: &WorkspaceIndex,
) -> (Vec<Finding>, Vec<Waiver>) {
    let scope = Scope::of(rel_path);
    let exempt = exempt_regions(src);
    let bindings = dataflow::analyze(src, index);
    let mut raw_findings: Vec<Finding> = Vec::new();

    if scope.compute {
        nondeterministic_iter(rel_path, src, &exempt, &bindings, index, &mut raw_findings);
        ambient_time(rel_path, src, &exempt, &mut raw_findings);
        env_read(rel_path, src, &exempt, &mut raw_findings);
        if !scope.float_exempt {
            float_reduction(rel_path, src, &exempt, &mut raw_findings);
            manual_float_accumulation(rel_path, src, &exempt, &bindings, index, &mut raw_findings);
        }
        if !SEED_EXEMPT_FILES.contains(&rel_path) {
            seed_arithmetic(rel_path, src, &exempt, &bindings, &mut raw_findings);
        }
        unjournalled_mutation(rel_path, src, &exempt, index, &mut raw_findings);
        panic_path(rel_path, src, &exempt, &bindings, index, &mut raw_findings);
    }
    // Contract-global rules: any crate, tests included. The analyzer's
    // own sources are exempt from the pure token-pattern rules — they
    // necessarily spell out the forbidden tokens (rule names, match
    // patterns, fixtures in doc comments).
    if !rel_path.starts_with("crates/xtask/") {
        random_state(rel_path, src, &mut raw_findings);
        rand_crate(rel_path, src, &mut raw_findings);
    }
    undocumented_unsafe(rel_path, src, &mut raw_findings);
    missing_scalar_sibling(rel_path, src, index, &mut raw_findings);

    raw_findings.sort_by_key(|a| (a.line, a.col));
    raw_findings.dedup_by(|a, b| a.rule == b.rule && a.line == b.line && a.col == b.col);

    // Resolve waivers.
    let mut findings = Vec::new();
    let mut waivers = Vec::new();
    for f in raw_findings {
        match waiver_for(src, f.rule, f.line) {
            Some(reason) => waivers.push(Waiver {
                rule: f.rule,
                file: f.file,
                line: f.line,
                reason,
            }),
            None => findings.push(f),
        }
    }
    (findings, waivers)
}

// ---------------------------------------------------------------------
// Waivers and comment scanning
// ---------------------------------------------------------------------

/// Search the flagged line's own comment, then the contiguous run of
/// comment-only / attribute / blank lines directly above it, for
/// `lint: <rule>-ok(reason)`.
fn waiver_for(src: &FileSource, rule: Rule, line: usize) -> Option<String> {
    let tag = format!("{}-ok", rule.name());
    if let Some(r) = parse_waiver(src.comment_on(line), &tag) {
        return Some(r);
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        let comment = src.comment_on(l);
        if let Some(r) = parse_waiver(comment, &tag) {
            return Some(r);
        }
        let continues = src.code_blank(l) || src.attr_line(l);
        if !continues {
            break;
        }
    }
    None
}

fn parse_waiver(comment: &str, tag: &str) -> Option<String> {
    let idx = comment.find("lint:")?;
    let rest = comment[idx + 5..].trim_start();
    let rest = rest.strip_prefix(tag)?;
    let rest = rest.strip_prefix('(')?;
    let close = rest.rfind(')')?;
    let reason = rest[..close].trim();
    if reason.is_empty() {
        None // a waiver must state a reason
    } else {
        Some(reason.to_string())
    }
}

/// Does the contiguous comment block on/above `line` (skipping attribute
/// lines) contain a `SAFETY:` justification?
fn has_safety_comment(src: &FileSource, line: usize) -> bool {
    let is_safety =
        |c: &str| c.contains("SAFETY:") || c.contains("Safety:") || c.contains("safety:");
    if is_safety(src.comment_on(line)) {
        return true;
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        if is_safety(src.comment_on(l)) {
            return true;
        }
        if !(src.code_blank(l) || src.attr_line(l)) {
            return false;
        }
    }
    false
}

// ---------------------------------------------------------------------
// Exempt-region detection: `#[cfg(test)]` and `#[cfg(feature = …)]`
// ---------------------------------------------------------------------

/// 1-based line spans exempt from the *scoped* compute rules: test code
/// (`#[cfg(test)]`) and feature-gated code (`#[cfg(feature = "…")]`) —
/// the determinism contract binds the default build, and no compute crate
/// enables features by default. `#[cfg(not(feature = …))]` (the default
/// build's half) is deliberately NOT exempt.
fn exempt_regions(src: &FileSource) -> Vec<(usize, usize)> {
    let mut regions = attr_regions(src, "#[cfg(test)]");
    regions.extend(attr_regions(src, "#[cfg(feature"));
    regions
}

/// Line spans of items gated by an attribute starting with `pat`: from the
/// attribute to the matching `}` of the item's body, or through the `;`
/// for braceless items (`use`, type aliases).
fn attr_regions(src: &FileSource, pat: &str) -> Vec<(usize, usize)> {
    let code = &src.code;
    let mut regions = Vec::new();
    let mut search = 0usize;
    let chars: Vec<char> = code.chars().collect();
    while let Some(pos) = code[byte_of(code, search)..].find(pat) {
        let start = search + code[byte_of(code, search)..][..pos].chars().count();
        // First `{` after the attribute opens the item's body; a `;` first
        // means a braceless item — the region is just those lines.
        let mut i = start + pat.chars().count();
        while i < chars.len() && chars[i] != '{' && chars[i] != ';' {
            i += 1;
        }
        if i >= chars.len() {
            break;
        }
        let (l0, _) = src.line_col(start);
        if chars[i] == ';' {
            let (l1, _) = src.line_col(i);
            regions.push((l0, l1));
            search = i + 1;
            continue;
        }
        let mut depth = 0usize;
        while i < chars.len() {
            match chars[i] {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        let (l1, _) = src.line_col(i.min(chars.len().saturating_sub(1)));
        regions.push((l0, l1));
        search = i + 1;
        if search >= chars.len() {
            break;
        }
    }
    regions
}

fn in_exempt(exempt: &[(usize, usize)], line: usize) -> bool {
    exempt.iter().any(|&(a, b)| line >= a && line <= b)
}

/// Byte offset of a char offset (the scanner works in chars, `str::find`
/// in bytes).
fn byte_of(s: &str, char_off: usize) -> usize {
    s.char_indices().nth(char_off).map_or(s.len(), |(b, _)| b)
}

// ---------------------------------------------------------------------
// Small token helpers
// ---------------------------------------------------------------------

/// Offsets (in chars) of word-boundary occurrences of `word` in `code`.
fn word_occurrences(code: &str, word: &str) -> Vec<usize> {
    let chars: Vec<char> = code.chars().collect();
    let wchars: Vec<char> = word.chars().collect();
    let mut out = Vec::new();
    if wchars.is_empty() || chars.len() < wchars.len() {
        return out;
    }
    for i in 0..=chars.len() - wchars.len() {
        if chars[i..i + wchars.len()] == wchars[..] {
            let before_ok = i == 0 || !is_ident_char(chars[i - 1]);
            let after = chars.get(i + wchars.len());
            let after_ok = after.is_none_or(|&c| !is_ident_char(c));
            if before_ok && after_ok {
                out.push(i);
            }
        }
    }
    out
}

/// Occurrences of a literal substring (no boundary check), in char offsets.
fn substr_occurrences(code: &str, pat: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(b) = code[from..].find(pat) {
        let char_off = code[..from + b].chars().count();
        out.push(char_off);
        from += b + pat.len();
    }
    out
}

/// Walk backwards from char offset `end` (exclusive) over one receiver
/// component: skips a balanced `[…]`/`(…)` suffix chain, then reads the
/// identifier. Returns the identifier, or None.
fn receiver_ident(chars: &[char], mut end: usize) -> Option<String> {
    // Skip whitespace.
    while end > 0 && chars[end - 1].is_whitespace() {
        end -= 1;
    }
    // Skip balanced bracket groups (possibly several: `a[i][j]`).
    loop {
        if end == 0 {
            return None;
        }
        let c = chars[end - 1];
        if c == ']' || c == ')' {
            let open = if c == ']' { '[' } else { '(' };
            let close = c;
            let mut depth = 0usize;
            while end > 0 {
                let ch = chars[end - 1];
                if ch == close {
                    depth += 1;
                } else if ch == open {
                    depth -= 1;
                    if depth == 0 {
                        end -= 1;
                        break;
                    }
                }
                end -= 1;
            }
            // A call suffix `f(…)` means the receiver is a call result —
            // read the fn name as the component.
        } else {
            break;
        }
    }
    let stop = end;
    let mut start = end;
    while start > 0 && is_ident_char(chars[start - 1]) {
        start -= 1;
    }
    if start == stop {
        return None;
    }
    Some(chars[start..stop].iter().collect())
}

// ---------------------------------------------------------------------
// Rule: nondeterministic-iter
// ---------------------------------------------------------------------

const ITER_METHODS: [&str; 10] = [
    ".iter()",
    ".iter_mut()",
    ".into_iter()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_keys()",
    ".into_values()",
    ".drain(",
    ".retain(",
];

fn nondeterministic_iter(
    rel_path: &str,
    src: &FileSource,
    exempt: &[(usize, usize)],
    bindings: &Bindings,
    index: &WorkspaceIndex,
    out: &mut Vec<Finding>,
) {
    let code = &src.code;
    let chars: Vec<char> = code.chars().collect();

    // 1. Iteration method calls on hash-tagged receivers — the tags come
    // from the dataflow pass (annotations, aliases, `let` chains, and
    // helper-call returns resolved through the workspace index).
    for m in ITER_METHODS {
        for off in substr_occurrences(code, m) {
            if let Some(recv) = receiver_ident(&chars, off) {
                if bindings.is_hash(&recv) {
                    let (line, col) = src.line_col(off + 1);
                    if in_exempt(exempt, line) {
                        continue;
                    }
                    out.push(Finding {
                        rule: Rule::NondeterministicIter,
                        file: rel_path.to_string(),
                        line,
                        end_line: line,
                        col,
                        message: format!(
                            "iteration over hash-ordered container `{recv}` via `{}`",
                            m.trim_end_matches('(')
                        ),
                        snippet: src.raw_line(line).to_string(),
                    });
                }
            }
        }
    }

    // 2. `for … in [&[mut]] <tracked or helper()> {`.
    for off in word_occurrences(code, "for") {
        // Find ` in ` after the pattern, then the expression up to `{`.
        let tail: String = chars[off..].iter().take(400).collect();
        let Some(in_pos) = tail.find(" in ") else {
            continue;
        };
        let Some(brace) = tail[in_pos..].find('{') else {
            continue;
        };
        let expr = tail[in_pos + 4..in_pos + brace].trim();
        let expr = expr
            .strip_prefix("&mut ")
            .or_else(|| expr.strip_prefix('&'))
            .unwrap_or(expr)
            .trim();
        let flagged = if expr.chars().all(|c| is_ident_char(c) || c == '.') {
            // Plain ident chain: the last component decides.
            let last = expr.rsplit('.').next().unwrap_or(expr);
            (!expr.is_empty() && bindings.is_hash(last)).then(|| last.to_string())
        } else if let Some(paren) = expr.find('(') {
            // A call: flag when the callee is an indexed helper returning
            // a hash container (`for g in groups_by_key() {`). Iteration
            // *methods* on tracked receivers were handled by the scan
            // above.
            let callee: String = expr[..paren]
                .chars()
                .rev()
                .take_while(|&c| is_ident_char(c))
                .collect::<Vec<_>>()
                .into_iter()
                .rev()
                .collect();
            (!callee.is_empty() && !expr[..paren].contains('.') && index.returns_hash(&callee))
                .then(|| format!("{callee}()"))
        } else {
            None
        };
        if let Some(what) = flagged {
            let (line, col) = src.line_col(off);
            if in_exempt(exempt, line) {
                continue;
            }
            out.push(Finding {
                rule: Rule::NondeterministicIter,
                file: rel_path.to_string(),
                line,
                end_line: line,
                col,
                message: format!("`for` loop over hash-ordered container `{what}`"),
                snippet: src.raw_line(line).to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Rule: ambient-time
// ---------------------------------------------------------------------

fn ambient_time(
    rel_path: &str,
    src: &FileSource,
    exempt: &[(usize, usize)],
    out: &mut Vec<Finding>,
) {
    for word in ["Instant", "SystemTime"] {
        for off in word_occurrences(&src.code, word) {
            let (line, col) = src.line_col(off);
            if in_exempt(exempt, line) {
                continue;
            }
            out.push(Finding {
                rule: Rule::AmbientTime,
                file: rel_path.to_string(),
                line,
                end_line: line,
                col,
                message: format!("ambient wall-clock read: `{word}` in a compute/state crate"),
                snippet: src.raw_line(line).to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Rules: random-state, rand-crate
// ---------------------------------------------------------------------

fn random_state(rel_path: &str, src: &FileSource, out: &mut Vec<Finding>) {
    for off in word_occurrences(&src.code, "RandomState") {
        let (line, col) = src.line_col(off);
        out.push(Finding {
            rule: Rule::RandomState,
            file: rel_path.to_string(),
            line,
            end_line: line,
            col,
            message: "std RandomState is seeded from the OS at process start".into(),
            snippet: src.raw_line(line).to_string(),
        });
    }
}

fn rand_crate(rel_path: &str, src: &FileSource, out: &mut Vec<Finding>) {
    for off in word_occurrences(&src.code, "rand") {
        // Flag `rand::…` paths and `use rand` / `extern crate rand`.
        let chars: Vec<char> = src.code.chars().collect();
        let after: String = chars[off + 4..].iter().take(2).collect();
        let is_path = after.starts_with("::");
        let line_start = src.code[..byte_of(&src.code, off)]
            .rfind('\n')
            .map_or(0, |b| b + 1);
        let line_text = &src.code[line_start..byte_of(&src.code, off)];
        let is_use = line_text.trim_start().starts_with("use")
            || line_text.trim_start().starts_with("extern crate");
        if is_path || (is_use && (after.starts_with(';') || after.starts_with("::"))) {
            let (line, col) = src.line_col(off);
            out.push(Finding {
                rule: Rule::RandCrate,
                file: rel_path.to_string(),
                line,
                end_line: line,
                col,
                message: "direct rand-crate usage bypasses the vendored seeded RNG".into(),
                snippet: src.raw_line(line).to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Rule: env-read
// ---------------------------------------------------------------------

fn env_read(rel_path: &str, src: &FileSource, exempt: &[(usize, usize)], out: &mut Vec<Finding>) {
    // Consts in this file naming allowlisted variables:
    // `const NAME: &str = "STEMBED_…";`
    let mut allow_consts: Vec<String> = Vec::new();
    {
        let raw = &src.raw;
        let mut from = 0usize;
        while let Some(b) = raw[from..].find("const ") {
            let rest = &raw[from + b + 6..];
            let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
            if let Some(q) = rest.find('"') {
                let lit: String = rest[q + 1..].chars().take_while(|&c| c != '"').collect();
                if lit.starts_with("STEMBED_") && !name.is_empty() {
                    allow_consts.push(name);
                }
            }
            from += b + 6;
        }
    }

    for pat in ["env::var_os", "env::var", "env::vars", "env::args"] {
        for off in substr_occurrences(&src.code, pat) {
            // Skip when a longer pattern already matched at this offset
            // (`env::var` inside `env::var_os`).
            let after_pat: Option<char> = src.code.chars().nth(off + pat.chars().count());
            if after_pat.is_some_and(is_ident_char) {
                continue;
            }
            let (line, col) = src.line_col(off);
            if in_exempt(exempt, line) {
                continue;
            }
            // Read the first argument from the raw text.
            let arg_start = off + pat.chars().count();
            let raw_chars: Vec<char> = src.raw.chars().collect();
            let mut j = arg_start;
            while j < raw_chars.len() && raw_chars[j] != '(' {
                j += 1;
            }
            j += 1;
            while j < raw_chars.len() && raw_chars[j].is_whitespace() {
                j += 1;
            }
            let allowed = if raw_chars.get(j) == Some(&'"') {
                let lit: String = raw_chars[j + 1..]
                    .iter()
                    .take_while(|&&c| c != '"')
                    .collect();
                lit.starts_with("STEMBED_")
            } else {
                let ident: String = raw_chars[j..]
                    .iter()
                    .take_while(|&&c| is_ident_char(c))
                    .collect();
                allow_consts.contains(&ident)
            };
            if !allowed {
                out.push(Finding {
                    rule: Rule::EnvRead,
                    file: rel_path.to_string(),
                    line,
                    end_line: line,
                    col,
                    message: format!("`{pat}` read outside the STEMBED_* allowlist"),
                    snippet: src.raw_line(line).to_string(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule: undocumented-unsafe
// ---------------------------------------------------------------------

fn undocumented_unsafe(rel_path: &str, src: &FileSource, out: &mut Vec<Finding>) {
    for off in word_occurrences(&src.code, "unsafe") {
        let (line, col) = src.line_col(off);
        if !has_safety_comment(src, line) {
            out.push(Finding {
                rule: Rule::UndocumentedUnsafe,
                file: rel_path.to_string(),
                line,
                end_line: line,
                col,
                message: "`unsafe` without a `SAFETY:` comment stating the invariant".into(),
                snippet: src.raw_line(line).to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Rule: missing-scalar-sibling
// ---------------------------------------------------------------------

const FEATURE_SUFFIXES: [&str; 6] = ["_avx2", "_avx512", "_fma", "_sse41", "_sse2", "_neon"];

fn missing_scalar_sibling(
    rel_path: &str,
    src: &FileSource,
    index: &WorkspaceIndex,
    out: &mut Vec<Finding>,
) {
    let code = &src.code;
    let chars: Vec<char> = code.chars().collect();
    for off in substr_occurrences(code, "#[target_feature") {
        // The decorated fn's name: first `fn NAME` after the attribute.
        let tail: String = chars[off..].iter().take(600).collect();
        let Some(fn_rel) = tail.find("fn ") else {
            continue;
        };
        let name: String = tail[fn_rel + 3..]
            .trim_start()
            .chars()
            .take_while(|&c| is_ident_char(c))
            .collect();
        if name.is_empty() {
            continue;
        }
        let base = FEATURE_SUFFIXES
            .iter()
            .find_map(|s| name.strip_suffix(s))
            .unwrap_or(&name);
        let candidates = [
            format!("{name}_scalar"),
            format!("{base}_scalar"),
            format!("{base}_with"),
            format!("{base}_wide"),
        ];
        // A sibling in the same file (textual) or anywhere in the indexed
        // workspace (a scalar twin in a sibling module) both count.
        let has_sibling = candidates.iter().any(|c| {
            index.has_fn(c)
                || word_occurrences(code, c)
                    .iter()
                    .any(|&o| preceded_by_fn(&chars, o))
        });
        if !has_sibling {
            let (line, col) = src.line_col(off);
            out.push(Finding {
                rule: Rule::MissingScalarSibling,
                file: rel_path.to_string(),
                line,
                end_line: line,
                col,
                message: format!(
                    "#[target_feature] fn `{name}` has no scalar reference sibling \
                     (looked for `{base}_scalar`/`{base}_with`/`{base}_wide`)"
                ),
                snippet: src.raw_line(line).to_string(),
            });
        }
    }
}

/// Is the identifier at char offset `off` preceded by the keyword `fn`?
fn preceded_by_fn(chars: &[char], off: usize) -> bool {
    let mut e = off;
    while e > 0 && chars[e - 1].is_whitespace() {
        e -= 1;
    }
    e >= 2 && chars[e - 2] == 'f' && chars[e - 1] == 'n' && (e == 2 || !is_ident_char(chars[e - 3]))
}

// ---------------------------------------------------------------------
// Rule: unfused-float-reduction
// ---------------------------------------------------------------------

const FLOAT_REDUCTIONS: [&str; 8] = [
    ".sum::<f32>",
    ".sum::<f64>",
    ".product::<f32>",
    ".product::<f64>",
    ".fold(0.0",
    ".fold(-0.0",
    ".fold(0f32",
    ".fold(0f64",
];

// ---------------------------------------------------------------------
// Rule: seed-arithmetic
// ---------------------------------------------------------------------

/// Operators and integer-mixing methods that, applied to a seed-provenance
/// value, hand-derive an RNG stream (the PR 3 overlap bug class). `-`, `*`
/// and single `<`/`>`/`|` are deliberately excluded: deref/ref sigils,
/// comparisons, and closure pipes would swamp the rule with noise.
fn seed_arithmetic(
    rel_path: &str,
    src: &FileSource,
    exempt: &[(usize, usize)],
    bindings: &Bindings,
    out: &mut Vec<Finding>,
) {
    let code = &src.code;
    let chars: Vec<char> = code.chars().collect();
    let seedy = |w: &str| dataflow::is_seedy_name(w) || bindings.is_seed(w);

    let fire = |off: usize, msg: String, out: &mut Vec<Finding>| {
        let (line, col) = src.line_col(off);
        if in_exempt(exempt, line) {
            return;
        }
        out.push(Finding {
            rule: Rule::SeedArithmetic,
            file: rel_path.to_string(),
            line,
            end_line: line,
            col,
            message: msg,
            snippet: src.raw_line(line).to_string(),
        });
    };

    // 1. Operator contexts around each seed-provenance identifier.
    let mut i = 0usize;
    while i < chars.len() {
        if !is_ident_char(chars[i]) {
            i += 1;
            continue;
        }
        let s = i;
        while i < chars.len() && is_ident_char(chars[i]) {
            i += 1;
        }
        if chars[s].is_ascii_digit() {
            continue; // a numeric literal, not an identifier
        }
        let word: String = chars[s..i].iter().collect();
        if !seedy(&word) {
            continue;
        }
        // Operator directly before (skipping whitespace).
        let mut b = s;
        while b > 0 && chars[b - 1].is_whitespace() {
            b -= 1;
        }
        let before = b > 0
            && match chars[b - 1] {
                '+' | '^' => true,
                '<' => b >= 2 && chars[b - 2] == '<',
                '>' => b >= 2 && chars[b - 2] == '>',
                // `+= seed` / `^= seed` (not `==`, `<=`, `>=`).
                '=' => b >= 2 && matches!(chars[b - 2], '+' | '^'),
                _ => false,
            };
        // Operator or mixing-method call directly after.
        let mut j = i;
        while j < chars.len() && chars[j].is_whitespace() {
            j += 1;
        }
        let mut method: Option<String> = None;
        let after = j < chars.len()
            && match chars[j] {
                '+' | '^' => true,
                '<' => chars.get(j + 1) == Some(&'<'),
                '>' => chars.get(j + 1) == Some(&'>'),
                '.' => {
                    let m: String = chars[j + 1..]
                        .iter()
                        .take_while(|&&c| is_ident_char(c))
                        .collect();
                    let mixing = ["wrapping_", "checked_", "overflowing_", "rotate_"]
                        .iter()
                        .any(|p| m.starts_with(p));
                    if mixing {
                        method = Some(m);
                    }
                    mixing
                }
                _ => false,
            };
        if before || after {
            let msg = match method {
                Some(m) => format!("`.{m}` on seed-provenance value `{word}`"),
                None => format!("hand arithmetic on seed-provenance value `{word}`"),
            };
            fire(s, msg, out);
        }
    }

    // 2. Seed-provenance values passed as *arguments* to integer-mixing
    // methods (`epoch.wrapping_add(seed)` launders the seed through the
    // receiver).
    for meth in ["wrapping_", "checked_", "overflowing_", "rotate_"] {
        let pat = format!(".{meth}");
        for off in substr_occurrences(code, &pat) {
            let mut j = off + pat.chars().count();
            while j < chars.len() && is_ident_char(chars[j]) {
                j += 1;
            }
            if chars.get(j) != Some(&'(') {
                continue;
            }
            let close = paren_close(&chars, j);
            let args: String = chars[j + 1..close.min(chars.len())].iter().collect();
            let has_seed_arg = args
                .split(|c: char| !is_ident_char(c))
                .any(|w| !w.is_empty() && !w.starts_with(|c: char| c.is_ascii_digit()) && seedy(w));
            if has_seed_arg {
                fire(
                    off + 1,
                    format!("seed-provenance value passed to `{meth}…` integer mixing"),
                    out,
                );
            }
        }
    }
}

/// Matching `)` for the `(` at char offset `open`.
fn paren_close(chars: &[char], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < chars.len() {
        match chars[i] {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    chars.len().saturating_sub(1)
}

/// Matching `}` for the `{` at char offset `open`.
fn brace_close(chars: &[char], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < chars.len() {
        match chars[i] {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    chars.len().saturating_sub(1)
}

// ---------------------------------------------------------------------
// Rule: unjournalled-mutation
// ---------------------------------------------------------------------

/// Body substrings that constitute a fact-storage write.
const STORAGE_WRITES: [&str; 2] = [".slots", ".live"];

/// Body substrings that reach the journal/epoch path: the primitive, or a
/// delegation to one of the public mutators that call it.
const JOURNAL_SIGNALS: [&str; 6] = [
    "record_mutation(",
    "self.insert(",
    "self.restore(",
    "self.delete(",
    "self.delete_unchecked(",
    "self.apply_mutation(",
];

fn unjournalled_mutation(
    rel_path: &str,
    src: &FileSource,
    exempt: &[(usize, usize)],
    index: &WorkspaceIndex,
    out: &mut Vec<Finding>,
) {
    let code_lines: Vec<&str> = src.code.split('\n').collect();
    for f in index.fns_in_file(rel_path) {
        if f.impl_type.as_deref() != Some("Database") || f.receiver != Some(Receiver::RefMut) {
            continue;
        }
        // 1-based line span of the body, `{` to `}`.
        let Some((b0, b1)) = f.body else {
            continue;
        };
        if in_exempt(exempt, f.line) {
            continue;
        }
        let body = code_lines[b0.saturating_sub(1)..b1.min(code_lines.len())].join("\n");
        if !STORAGE_WRITES.iter().any(|w| body.contains(w)) {
            continue;
        }
        if JOURNAL_SIGNALS.iter().any(|s| body.contains(s)) {
            continue;
        }
        let end_line = b1;
        let col = src.raw_line(f.line).find("fn ").map_or(1, |b| b + 1);
        out.push(Finding {
            rule: Rule::UnjournalledMutation,
            file: rel_path.to_string(),
            line: f.line,
            end_line,
            col,
            message: format!(
                "`&mut self` method `{}` on `Database` writes fact storage \
                 without journalling",
                f.name
            ),
            snippet: src.raw_line(f.line).to_string(),
        });
    }
}

// ---------------------------------------------------------------------
// Rule: manual-float-accumulation
// ---------------------------------------------------------------------

fn manual_float_accumulation(
    rel_path: &str,
    src: &FileSource,
    exempt: &[(usize, usize)],
    bindings: &Bindings,
    index: &WorkspaceIndex,
    out: &mut Vec<Finding>,
) {
    let code = &src.code;
    let chars: Vec<char> = code.chars().collect();
    for off in word_occurrences(code, "for") {
        let tail: String = chars[off..].iter().take(400).collect();
        let Some(in_pos) = tail.find(" in ") else {
            continue;
        };
        let Some(brace_rel) = tail[in_pos..].find('{') else {
            continue;
        };
        let expr = tail[in_pos + 4..in_pos + brace_rel].trim();
        // A hash-ordered source: any tracked identifier in the expression,
        // or a free-fn call the index knows returns a hash container.
        let mut hashy = expr.split(|c: char| !is_ident_char(c)).any(|w| {
            !w.is_empty() && !w.starts_with(|c: char| c.is_ascii_digit()) && bindings.is_hash(w)
        });
        if !hashy {
            if let Some(p) = expr.find('(') {
                let callee: String = expr[..p]
                    .chars()
                    .rev()
                    .take_while(|&c| is_ident_char(c))
                    .collect::<Vec<_>>()
                    .into_iter()
                    .rev()
                    .collect();
                hashy =
                    !callee.is_empty() && !expr[..p].contains('.') && index.returns_hash(&callee);
            }
        }
        if !hashy {
            continue;
        }
        let open = off + tail[..in_pos + brace_rel].chars().count();
        let close = brace_close(&chars, open);
        for op in ["+=", "-=", "*="] {
            for o in substr_occurrences(code, op) {
                if o <= open || o >= close {
                    continue;
                }
                let Some(name) = receiver_ident(&chars, o) else {
                    continue;
                };
                if !bindings.is_float(&name) {
                    continue;
                }
                let (line, col) = src.line_col(o);
                if in_exempt(exempt, line) {
                    continue;
                }
                out.push(Finding {
                    rule: Rule::ManualFloatAccumulation,
                    file: rel_path.to_string(),
                    line,
                    end_line: line,
                    col,
                    message: format!(
                        "float accumulator `{name}` updated with `{op}` inside a \
                         loop over a hash-ordered source"
                    ),
                    snippet: src.raw_line(line).to_string(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule: panic-path
// ---------------------------------------------------------------------

/// Is the panic at `line` covered by a documented contract: a `PANICS:`
/// comment on the line (or the contiguous comment block above), or a
/// `# Panics` doc section on the enclosing fn?
fn panic_documented(src: &FileSource, index: &WorkspaceIndex, rel_path: &str, line: usize) -> bool {
    let marked = |c: &str| c.contains("PANICS:") || c.contains("# Panics");
    if marked(src.comment_on(line)) {
        return true;
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        if marked(src.comment_on(l)) {
            return true;
        }
        if !(src.code_blank(l) || src.attr_line(l)) {
            break;
        }
    }
    index
        .enclosing_fn(rel_path, line)
        .is_some_and(|f| f.doc_panics)
}

fn panic_path(
    rel_path: &str,
    src: &FileSource,
    exempt: &[(usize, usize)],
    bindings: &Bindings,
    index: &WorkspaceIndex,
    out: &mut Vec<Finding>,
) {
    let code = &src.code;
    let chars: Vec<char> = code.chars().collect();

    for (pat, what) in [
        (".unwrap()", "`.unwrap()`"),
        (".expect(", "`.expect(…)`"),
        ("panic!", "`panic!` invocation"),
    ] {
        for off in substr_occurrences(code, pat) {
            let anchor = if pat.starts_with('.') { off + 1 } else { off };
            let (line, col) = src.line_col(anchor);
            if in_exempt(exempt, line) || panic_documented(src, index, rel_path, line) {
                continue;
            }
            out.push(Finding {
                rule: Rule::PanicPath,
                file: rel_path.to_string(),
                line,
                end_line: line,
                col,
                message: format!("{what} on a production compute path"),
                snippet: src.raw_line(line).to_string(),
            });
        }
    }

    // Indexing with an integer literal: `xs[3]` panics unless the receiver
    // is a fixed-size array the dataflow pass proved long enough.
    let mut i = 0usize;
    while i < chars.len() {
        if chars[i] == '[' && i > 0 && is_ident_char(chars[i - 1]) {
            let mut j = i + 1;
            while j < chars.len() && chars[j].is_ascii_digit() {
                j += 1;
            }
            if j > i + 1 && chars.get(j) == Some(&']') {
                let lit: usize = chars[i + 1..j]
                    .iter()
                    .collect::<String>()
                    .parse()
                    .unwrap_or(0);
                let proven = receiver_ident(&chars, i)
                    .and_then(|r| bindings.array_len(&r))
                    .is_some_and(|n| lit < n);
                if !proven {
                    let (line, col) = src.line_col(i);
                    if !in_exempt(exempt, line) && !panic_documented(src, index, rel_path, line) {
                        out.push(Finding {
                            rule: Rule::PanicPath,
                            file: rel_path.to_string(),
                            line,
                            end_line: line,
                            col,
                            message: format!(
                                "literal index `[{lit}]` without a provable fixed-size \
                                 array bound"
                            ),
                            snippet: src.raw_line(line).to_string(),
                        });
                    }
                }
            }
        }
        i += 1;
    }
}

fn float_reduction(
    rel_path: &str,
    src: &FileSource,
    exempt: &[(usize, usize)],
    out: &mut Vec<Finding>,
) {
    for pat in FLOAT_REDUCTIONS {
        for off in substr_occurrences(&src.code, pat) {
            let (line, col) = src.line_col(off + 1);
            if in_exempt(exempt, line) {
                continue;
            }
            out.push(Finding {
                rule: Rule::UnfusedFloatReduction,
                file: rel_path.to_string(),
                line,
                end_line: line,
                col,
                message: format!(
                    "float reduction `{}` outside the fixed-lane kernel layer",
                    pat.trim_start_matches('.')
                ),
                snippet: src.raw_line(line).to_string(),
            });
        }
    }
}
