//! Workspace symbol index — the cross-file layer under the dataflow-aware
//! rules.
//!
//! Pass one collects every `fn`/`struct`/`impl`/`const` declaration from the
//! blanked code view of each file: name, file, signature line, parameter and
//! return-type text, receiver, enclosing `impl` type, body line span, and
//! the attributes/doc sections two rules read (`#[target_feature]`,
//! `# Panics`). Pass two is implicit: rules resolve name references through
//! the [`WorkspaceIndex`] maps, so "does a scalar sibling exist", "does this
//! helper return a hash container", and "is this line inside a fn whose doc
//! declares its panics" all work across files.
//!
//! Like the lexer, this is a token-level approximation, not a compiler:
//! same-named functions in different files share one index entry (rules that
//! consume the index treat any match as a match, which over-approximates in
//! the safe direction for each rule that uses it).

use crate::lexer::{is_ident_char, FileSource};
use std::collections::BTreeMap;

/// How a method takes `self`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Receiver {
    Ref,
    RefMut,
    Owned,
}

/// One `fn` declaration.
#[derive(Debug, Clone)]
pub struct FnDecl {
    pub name: String,
    /// Workspace-relative path of the declaring file.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Parameter-list text (between the parens, blanked view).
    pub params: String,
    /// Return-type text ("" for unit).
    pub ret: String,
    /// `self` receiver when the fn is a method.
    pub receiver: Option<Receiver>,
    /// Innermost enclosing `impl` block's type name.
    pub impl_type: Option<String>,
    /// 1-based body line span (opening `{` line to closing `}` line);
    /// `None` for bodyless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// Carries a `#[target_feature(...)]` attribute.
    pub has_target_feature: bool,
    /// The doc comment above declares a `# Panics` section.
    pub doc_panics: bool,
}

/// A `struct` or `const` declaration (name + location is all the rules
/// need; field/value classification happens in the per-file dataflow pass).
#[derive(Debug, Clone)]
pub struct ItemDecl {
    pub name: String,
    pub file: String,
    pub line: usize,
}

/// The two-pass symbol index over a set of files.
#[derive(Debug, Default)]
pub struct WorkspaceIndex {
    pub fns: BTreeMap<String, Vec<FnDecl>>,
    pub structs: BTreeMap<String, Vec<ItemDecl>>,
    pub consts: BTreeMap<String, Vec<ItemDecl>>,
}

impl WorkspaceIndex {
    /// Build the index over `(workspace-relative path, parsed source)` pairs.
    pub fn build(files: &[(&str, &FileSource)]) -> WorkspaceIndex {
        let mut idx = WorkspaceIndex::default();
        for (rel, src) in files {
            index_file(rel, src, &mut idx);
        }
        idx
    }

    /// Every declaration of a fn with this exact name, any file.
    pub fn fn_named(&self, name: &str) -> &[FnDecl] {
        self.fns.get(name).map_or(&[], Vec::as_slice)
    }

    /// Is any fn with this name declared anywhere in the indexed set?
    pub fn has_fn(&self, name: &str) -> bool {
        self.fns.contains_key(name)
    }

    /// Does any declaration of `name` return a hash-ordered container?
    pub fn returns_hash(&self, name: &str) -> bool {
        self.fn_named(name)
            .iter()
            .any(|f| mentions_word(&f.ret, "HashMap") || mentions_word(&f.ret, "HashSet"))
    }

    /// Does `name` look like a seed-producing helper (name mentions `seed`,
    /// returns `u64`)? Arithmetic on such a helper's result re-derives
    /// stream identity by hand — the laundering the seed-arithmetic rule
    /// exists to catch.
    pub fn returns_seed(&self, name: &str) -> bool {
        name.contains("seed")
            && self
                .fn_named(name)
                .iter()
                .any(|f| mentions_word(&f.ret, "u64"))
    }

    /// The innermost fn in `file` whose body contains 1-based `line`.
    pub fn enclosing_fn(&self, file: &str, line: usize) -> Option<&FnDecl> {
        self.fns
            .values()
            .flatten()
            .filter(|f| f.file == file)
            .filter(|f| f.body.is_some_and(|(a, b)| line >= a && line <= b))
            .min_by_key(|f| {
                let (a, b) = f.body.unwrap_or((0, 0));
                b - a
            })
    }

    /// All fns declared in one file (for per-file rule passes).
    pub fn fns_in_file<'a>(&'a self, file: &'a str) -> impl Iterator<Item = &'a FnDecl> {
        self.fns.values().flatten().filter(move |f| f.file == file)
    }
}

fn mentions_word(text: &str, word: &str) -> bool {
    let chars: Vec<char> = text.chars().collect();
    let w: Vec<char> = word.chars().collect();
    if chars.len() < w.len() {
        return false;
    }
    (0..=chars.len() - w.len()).any(|i| {
        chars[i..i + w.len()] == w[..]
            && (i == 0 || !is_ident_char(chars[i - 1]))
            && chars.get(i + w.len()).is_none_or(|&c| !is_ident_char(c))
    })
}

fn index_file(rel: &str, src: &FileSource, idx: &mut WorkspaceIndex) {
    let chars: Vec<char> = src.code.chars().collect();
    let impls = impl_spans(&chars);

    for off in word_offsets(&chars, "fn") {
        if let Some(decl) = parse_fn(rel, src, &chars, off, &impls) {
            idx.fns.entry(decl.name.clone()).or_default().push(decl);
        }
    }
    for (kw, map) in [("struct", &mut idx.structs), ("const", &mut idx.consts)] {
        for off in word_offsets(&chars, kw) {
            let mut j = off + kw.chars().count();
            while j < chars.len() && chars[j].is_whitespace() {
                j += 1;
            }
            let name: String = chars[j..]
                .iter()
                .take_while(|&&c| is_ident_char(c))
                .collect();
            // `struct` in `fn(...)` types or `const` in `*const T` produce
            // empty/keyword names; require a real identifier.
            if name.is_empty() || name == "fn" {
                continue;
            }
            let (line, _) = src.line_col(off);
            map.entry(name.clone()).or_default().push(ItemDecl {
                name,
                file: rel.to_string(),
                line,
            });
        }
    }
}

/// `(open_char_offset, close_char_offset, type_name)` of every `impl` block.
fn impl_spans(chars: &[char]) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    for off in word_offsets(chars, "impl") {
        let mut j = off + 4;
        j = skip_generics(chars, skip_ws(chars, j));
        // Header text up to the opening brace; a trait impl names the type
        // after `for`.
        let mut header = String::new();
        let mut k = j;
        while k < chars.len() && chars[k] != '{' && chars[k] != ';' {
            header.push(chars[k]);
            k += 1;
        }
        if k >= chars.len() || chars[k] != '{' {
            continue;
        }
        let ty_text = match header.find(" for ") {
            Some(p) => &header[p + 5..],
            None => header.as_str(),
        };
        let name = type_base_name(ty_text);
        if name.is_empty() {
            continue;
        }
        let close = match_brace(chars, k);
        out.push((k, close, name));
    }
    out
}

/// The base identifier of a type path: `&mut reldb::Database<'a>` → `Database`.
fn type_base_name(ty: &str) -> String {
    let ty = ty.trim();
    let ty = ty.trim_start_matches('&').trim_start();
    let ty = ty.strip_prefix("mut ").unwrap_or(ty).trim_start();
    let ty = ty.strip_prefix("dyn ").unwrap_or(ty).trim_start();
    let head: String = ty
        .chars()
        .take_while(|&c| is_ident_char(c) || c == ':')
        .collect();
    head.rsplit("::").next().unwrap_or("").to_string()
}

fn parse_fn(
    rel: &str,
    src: &FileSource,
    chars: &[char],
    off: usize,
    impls: &[(usize, usize, String)],
) -> Option<FnDecl> {
    let mut j = skip_ws(chars, off + 2);
    let name: String = chars[j..]
        .iter()
        .take_while(|&&c| is_ident_char(c))
        .collect();
    if name.is_empty() {
        // `fn(...)` pointer type, not a declaration.
        return None;
    }
    j += name.chars().count();
    j = skip_generics(chars, skip_ws(chars, j));
    j = skip_ws(chars, j);
    if chars.get(j) != Some(&'(') {
        return None;
    }
    let params_close = match_paren(chars, j);
    let params: String = chars[j + 1..params_close.min(chars.len())].iter().collect();
    let params = params.trim().to_string();
    j = skip_ws(chars, params_close + 1);

    // Return type: after `->`, up to the body/terminator at depth 0.
    let mut ret = String::new();
    if chars.get(j) == Some(&'-') && chars.get(j + 1) == Some(&'>') {
        j += 2;
        let mut depth = 0i32;
        while j < chars.len() {
            let c = chars[j];
            match c {
                '<' | '(' | '[' => depth += 1,
                '>' | ')' | ']' if depth > 0 => depth -= 1,
                '{' | ';' if depth == 0 => break,
                _ => {}
            }
            ret.push(c);
            j += 1;
        }
        // A `where` clause ends the type text.
        if let Some(p) = ret.find(" where ") {
            ret.truncate(p);
        }
    }
    // Body: the `{` before any `;` (a `;` first means a trait declaration).
    let mut body = None;
    let mut k = j;
    while k < chars.len() {
        match chars[k] {
            '{' => {
                let close = match_brace(chars, k);
                let (l0, _) = src.line_col(k);
                let (l1, _) = src.line_col(close.min(chars.len().saturating_sub(1)));
                body = Some((l0, l1));
                break;
            }
            ';' => break,
            _ => k += 1,
        }
    }

    let receiver = parse_receiver(&params);
    let impl_type = impls
        .iter()
        .filter(|&&(a, b, _)| off > a && off < b)
        .min_by_key(|&&(a, b, _)| b - a)
        .map(|(_, _, n)| n.clone());

    // Attributes and docs: the contiguous run of comment-only / attribute /
    // blank lines directly above the signature.
    let (line, _) = src.line_col(off);
    let mut has_target_feature = false;
    let mut doc_panics = false;
    let mut l = line;
    while l > 1 {
        l -= 1;
        let is_attr = src.attr_line(l);
        let is_blankish = src.code_blank(l);
        if !(is_attr || is_blankish) {
            break;
        }
        if src.raw_line(l).contains("#[target_feature") {
            has_target_feature = true;
        }
        if src.comment_on(l).contains("# Panics") {
            doc_panics = true;
        }
    }

    Some(FnDecl {
        name,
        file: rel.to_string(),
        line,
        params,
        ret: ret.trim().to_string(),
        receiver,
        impl_type,
        body,
        has_target_feature,
        doc_panics,
    })
}

fn parse_receiver(params: &str) -> Option<Receiver> {
    let p = params.trim_start();
    if let Some(rest) = p.strip_prefix('&') {
        // `&self`, `&mut self`, `&'a self`, `&'a mut self`.
        let rest = rest.trim_start();
        let rest = if rest.starts_with('\'') {
            match rest.find(char::is_whitespace) {
                Some(w) => rest[w..].trim_start(),
                None => return None,
            }
        } else {
            rest
        };
        if let Some(rest) = rest.strip_prefix("mut ") {
            if word_is_self(rest.trim_start()) {
                return Some(Receiver::RefMut);
            }
        } else if word_is_self(rest) {
            return Some(Receiver::Ref);
        }
        return None;
    }
    let p = p.strip_prefix("mut ").unwrap_or(p);
    if word_is_self(p) {
        return Some(Receiver::Owned);
    }
    None
}

fn word_is_self(s: &str) -> bool {
    s.starts_with("self") && s[4..].chars().next().is_none_or(|c| !is_ident_char(c))
}

// ---------------------------------------------------------------------
// char-level scanning helpers
// ---------------------------------------------------------------------

fn skip_ws(chars: &[char], mut j: usize) -> usize {
    while j < chars.len() && chars[j].is_whitespace() {
        j += 1;
    }
    j
}

/// Skip a balanced `<...>` group at `j` (no-op otherwise). The `>` of a
/// `->` inside the group (closure bounds like `F: Fn(u64) -> u64`) does
/// not close an angle.
fn skip_generics(chars: &[char], j: usize) -> usize {
    if chars.get(j) != Some(&'<') {
        return j;
    }
    let mut depth = 0i32;
    let mut k = j;
    while k < chars.len() {
        match chars[k] {
            '-' if chars.get(k + 1) == Some(&'>') => {
                k += 2;
                continue;
            }
            '<' => depth += 1,
            '>' => {
                depth -= 1;
                if depth == 0 {
                    return k + 1;
                }
            }
            _ => {}
        }
        k += 1;
    }
    k
}

/// Offset of the `)` matching the `(` at `open`.
fn match_paren(chars: &[char], open: usize) -> usize {
    let mut depth = 0i32;
    let mut k = open;
    while k < chars.len() {
        match chars[k] {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
        k += 1;
    }
    k
}

/// Offset of the `}` matching the `{` at `open`.
fn match_brace(chars: &[char], open: usize) -> usize {
    let mut depth = 0i32;
    let mut k = open;
    while k < chars.len() {
        match chars[k] {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
        k += 1;
    }
    k
}

/// Word-boundary occurrences of `word` (char offsets).
fn word_offsets(chars: &[char], word: &str) -> Vec<usize> {
    let w: Vec<char> = word.chars().collect();
    let mut out = Vec::new();
    if chars.len() < w.len() {
        return out;
    }
    for i in 0..=chars.len() - w.len() {
        if chars[i..i + w.len()] == w[..]
            && (i == 0 || !is_ident_char(chars[i - 1]))
            && chars.get(i + w.len()).is_none_or(|&c| !is_ident_char(c))
        {
            out.push(i);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::FileSource;

    fn index_of(srcs: &[(&str, &str)]) -> WorkspaceIndex {
        let parsed: Vec<(&str, FileSource)> = srcs
            .iter()
            .map(|(p, s)| (*p, FileSource::parse(s)))
            .collect();
        let refs: Vec<(&str, &FileSource)> = parsed.iter().map(|(p, s)| (*p, s)).collect();
        WorkspaceIndex::build(&refs)
    }

    #[test]
    fn fn_signature_and_body_span() {
        let idx = index_of(&[(
            "a.rs",
            "/// Docs.\n///\n/// # Panics\n/// When empty.\npub fn head(xs: &[u32]) -> u32 {\n    xs[0]\n}\n",
        )]);
        let f = &idx.fn_named("head")[0];
        assert_eq!(f.file, "a.rs");
        assert_eq!(f.line, 5);
        assert_eq!(f.ret, "u32");
        assert_eq!(f.params, "xs: &[u32]");
        assert_eq!(f.body, Some((5, 7)));
        assert!(f.doc_panics);
        assert!(f.receiver.is_none());
        assert_eq!(
            idx.enclosing_fn("a.rs", 6).map(|f| f.name.as_str()),
            Some("head")
        );
        assert!(idx.enclosing_fn("a.rs", 1).is_none());
    }

    #[test]
    fn impl_methods_and_receivers() {
        let idx = index_of(&[(
            "db.rs",
            "pub struct Database;\n\
             impl Database {\n\
                 pub fn get(&self) -> u32 { 0 }\n\
                 pub fn put(&mut self, x: u32) { let _ = x; }\n\
                 pub fn into_inner(self) -> u32 { 0 }\n\
             }\n\
             impl Clone for Database {\n\
                 fn clone(&self) -> Self { Database }\n\
             }\n",
        )]);
        assert_eq!(idx.fn_named("put")[0].receiver, Some(Receiver::RefMut));
        assert_eq!(idx.fn_named("get")[0].receiver, Some(Receiver::Ref));
        assert_eq!(
            idx.fn_named("into_inner")[0].receiver,
            Some(Receiver::Owned)
        );
        assert_eq!(
            idx.fn_named("put")[0].impl_type.as_deref(),
            Some("Database")
        );
        assert_eq!(
            idx.fn_named("clone")[0].impl_type.as_deref(),
            Some("Database")
        );
        assert_eq!(idx.structs.get("Database").map(Vec::len), Some(1));
    }

    #[test]
    fn cross_file_return_classification() {
        let idx = index_of(&[
            (
                "helpers.rs",
                "use std::collections::HashMap;\n\
                 pub fn by_key() -> HashMap<u32, u32> { HashMap::new() }\n\
                 pub fn derive_seed(master: u64, stream: u64) -> u64 { master ^ stream }\n",
            ),
            ("other.rs", "pub fn plain() -> Vec<u32> { Vec::new() }\n"),
        ]);
        assert!(idx.returns_hash("by_key"));
        assert!(!idx.returns_hash("plain"));
        assert!(idx.returns_seed("derive_seed"));
        assert!(!idx.returns_seed("plain"));
        assert!(idx.has_fn("by_key") && idx.has_fn("plain"));
    }

    #[test]
    fn generics_with_fn_bounds_do_not_derail_params() {
        let idx = index_of(&[(
            "g.rs",
            "pub fn apply<F: Fn(u64) -> u64, G: Fn() -> u64>(f: F, g: G) -> u64 { f(g()) }\n",
        )]);
        let f = &idx.fn_named("apply")[0];
        assert_eq!(f.params, "f: F, g: G");
        assert_eq!(f.ret, "u64");
    }

    #[test]
    fn target_feature_attribute_is_seen() {
        let idx = index_of(&[(
            "k.rs",
            "#[target_feature(enable = \"avx2\")]\n\
             unsafe fn dot_avx2(a: &[f32]) -> f32 { 0.0 }\n\
             fn dot_scalar(a: &[f32]) -> f32 { 0.0 }\n",
        )]);
        assert!(idx.fn_named("dot_avx2")[0].has_target_feature);
        assert!(!idx.fn_named("dot_scalar")[0].has_target_feature);
    }

    #[test]
    fn trait_declarations_have_no_body() {
        let idx = index_of(&[(
            "t.rs",
            "pub trait Hook {\n    fn notify(&mut self, epoch: u64);\n}\n",
        )]);
        assert_eq!(idx.fn_named("notify")[0].body, None);
        assert_eq!(idx.fn_named("notify")[0].receiver, Some(Receiver::RefMut));
    }
}
