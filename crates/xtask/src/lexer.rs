//! A comment- and string-literal-aware scanner for Rust source.
//!
//! The lint rules work on a *blanked* view of each file: comments and the
//! contents of string/char literals are replaced by spaces (newlines kept),
//! so token scans never match inside `"HashMap"` the string or `// unsafe`
//! the comment. Comments are collected separately, per line, because two
//! rules read them: `SAFETY:` justification comments and `// lint: …-ok(…)`
//! waivers.

/// One file, split into the views the rules need.
pub struct FileSource {
    /// Original text (needed to read string-literal arguments, e.g. the
    /// env-var name passed to `std::env::var`).
    pub raw: String,
    /// `raw` with comments and literal contents blanked to spaces. Always
    /// the same length and line structure as `raw`.
    pub code: String,
    /// Comment text per line (0-based index = line − 1; empty string when
    /// the line has no comment). Block comments contribute to every line
    /// they span.
    pub comments: Vec<String>,
}

impl FileSource {
    pub fn parse(raw: &str) -> FileSource {
        let mut code: Vec<char> = Vec::with_capacity(raw.len());
        let nlines = raw.lines().count().max(1);
        let mut comments = vec![String::new(); nlines + 1];
        let chars: Vec<char> = raw.chars().collect();
        let mut line = 0usize;
        let mut i = 0usize;

        // Push a blank (space) for every non-newline char, the char itself
        // for newlines, so offsets and line structure survive.
        fn blank(code: &mut Vec<char>, c: char) {
            code.push(if c == '\n' { '\n' } else { ' ' });
        }

        while i < chars.len() {
            let c = chars[i];
            match c {
                '\n' => {
                    code.push('\n');
                    line += 1;
                    i += 1;
                }
                '/' if i + 1 < chars.len() && chars[i + 1] == '/' => {
                    // Line comment (incl. doc comments). Capture to newline.
                    let start = i;
                    while i < chars.len() && chars[i] != '\n' {
                        blank(&mut code, chars[i]);
                        i += 1;
                    }
                    let text: String = chars[start..i].iter().collect();
                    if !comments[line].is_empty() {
                        comments[line].push(' ');
                    }
                    comments[line].push_str(&text);
                }
                '/' if i + 1 < chars.len() && chars[i + 1] == '*' => {
                    // Block comment, nested per Rust.
                    let mut depth = 1usize;
                    blank(&mut code, chars[i]);
                    blank(&mut code, chars[i + 1]);
                    i += 2;
                    let mut seg = String::from("/*");
                    while i < chars.len() && depth > 0 {
                        if chars[i] == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
                            depth += 1;
                            seg.push_str("/*");
                            blank(&mut code, '/');
                            blank(&mut code, '*');
                            i += 2;
                        } else if chars[i] == '*' && i + 1 < chars.len() && chars[i + 1] == '/' {
                            depth -= 1;
                            seg.push_str("*/");
                            blank(&mut code, '*');
                            blank(&mut code, '/');
                            i += 2;
                        } else {
                            if chars[i] == '\n' {
                                if !comments[line].is_empty() {
                                    comments[line].push(' ');
                                }
                                comments[line].push_str(&seg);
                                seg.clear();
                                code.push('\n');
                                line += 1;
                            } else {
                                seg.push(chars[i]);
                                blank(&mut code, chars[i]);
                            }
                            i += 1;
                        }
                    }
                    if !seg.is_empty() {
                        if !comments[line].is_empty() {
                            comments[line].push(' ');
                        }
                        comments[line].push_str(&seg);
                    }
                }
                '"' => {
                    i = scan_string(&chars, i, &mut code, &mut line);
                }
                'r' | 'b' if starts_literal_prefix(&chars, i) => {
                    i = scan_prefixed_literal(&chars, i, &mut code, &mut line);
                }
                '\'' => {
                    // Char literal vs lifetime.
                    if let Some(end) = char_literal_end(&chars, i) {
                        // Blank the contents, keep line structure.
                        for &ch in &chars[i..end] {
                            blank(&mut code, ch);
                        }
                        i = end;
                    } else {
                        // Lifetime: keep the tick, the ident scans as code.
                        code.push('\'');
                        i += 1;
                    }
                }
                _ => {
                    code.push(c);
                    i += 1;
                }
            }
        }

        FileSource {
            raw: raw.to_string(),
            code: code.into_iter().collect(),
            comments,
        }
    }

    /// 1-based line and column (both in chars) of a char offset into `code`.
    pub fn line_col(&self, offset: usize) -> (usize, usize) {
        let mut line = 1usize;
        let mut col = 1usize;
        for (n, c) in self.code.chars().enumerate() {
            if n == offset {
                break;
            }
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }

    /// The raw text of a 1-based line (for diagnostics).
    pub fn raw_line(&self, line: usize) -> &str {
        self.raw.lines().nth(line.saturating_sub(1)).unwrap_or("")
    }

    /// Comment text attached to a 1-based line ("" when none).
    pub fn comment_on(&self, line: usize) -> &str {
        self.comments
            .get(line.saturating_sub(1))
            .map_or("", String::as_str)
    }

    /// Whether the 1-based line has no code other than whitespace (it may
    /// still carry a comment).
    pub fn code_blank(&self, line: usize) -> bool {
        self.code
            .lines()
            .nth(line.saturating_sub(1))
            .is_none_or(|l| l.trim().is_empty())
    }

    /// Whether the 1-based line's code is an attribute line — `#[…]` /
    /// `#![…]`, possibly spanning (a line ending in `]` that began one).
    pub fn attr_line(&self, line: usize) -> bool {
        let l = self
            .code
            .lines()
            .nth(line.saturating_sub(1))
            .unwrap_or("")
            .trim();
        l.starts_with("#[") || l.starts_with("#!") || (l.ends_with(']') && !l.contains([';', '{']))
    }
}

fn starts_literal_prefix(chars: &[char], i: usize) -> bool {
    // r"…", r#"…"#, b"…", br"…", br#"…"#, b'…'
    match chars[i] {
        'r' => {
            // Only when 'r' is not part of a longer identifier.
            if i > 0 && is_ident_char(chars[i - 1]) {
                return false;
            }
            let mut j = i + 1;
            while j < chars.len() && chars[j] == '#' {
                j += 1;
            }
            j < chars.len() && chars[j] == '"'
        }
        'b' => {
            if i > 0 && is_ident_char(chars[i - 1]) {
                return false;
            }
            match chars.get(i + 1) {
                Some('"') | Some('\'') => true,
                Some('r') => {
                    let mut j = i + 2;
                    while j < chars.len() && chars[j] == '#' {
                        j += 1;
                    }
                    j < chars.len() && chars[j] == '"'
                }
                _ => false,
            }
        }
        _ => false,
    }
}

fn scan_string(chars: &[char], start: usize, code: &mut Vec<char>, line: &mut usize) -> usize {
    // Plain "…" with escapes. Blanks everything including the quotes.
    let mut i = start;
    push_blank(code, chars[i], line);
    i += 1;
    while i < chars.len() {
        match chars[i] {
            '\\' if i + 1 < chars.len() => {
                push_blank(code, chars[i], line);
                push_blank(code, chars[i + 1], line);
                i += 2;
            }
            '"' => {
                push_blank(code, chars[i], line);
                return i + 1;
            }
            c => {
                push_blank(code, c, line);
                i += 1;
            }
        }
    }
    i
}

fn scan_prefixed_literal(
    chars: &[char],
    start: usize,
    code: &mut Vec<char>,
    line: &mut usize,
) -> usize {
    let mut i = start;
    // Consume the prefix in Rust's order: an optional `b`, then an
    // optional `r`. Only the `r` makes the literal *raw* (no escapes) —
    // a plain `b"…"` byte string processes `\"` exactly like `"…"` does,
    // which is what the escape-aware branch below preserves. (Treating
    // `b"…"` as raw used to end the literal at an escaped quote and leak
    // its tail into the code view.)
    let mut raw = false;
    if i < chars.len() && chars[i] == 'b' {
        push_blank(code, chars[i], line);
        i += 1;
    }
    if i < chars.len() && chars[i] == 'r' {
        raw = true;
        push_blank(code, chars[i], line);
        i += 1;
    }
    if i < chars.len() && chars[i] == '\'' {
        // b'…' byte literal.
        if let Some(end) = char_literal_end(chars, i) {
            for &ch in &chars[i..end] {
                push_blank(code, ch, line);
            }
            return end;
        }
        push_blank(code, chars[i], line);
        return i + 1;
    }
    let mut hashes = 0usize;
    while i < chars.len() && chars[i] == '#' {
        push_blank(code, chars[i], line);
        hashes += 1;
        i += 1;
    }
    if i >= chars.len() || chars[i] != '"' {
        return i;
    }
    push_blank(code, chars[i], line);
    i += 1;
    if !raw {
        // `b"…"`: escapes behave exactly as in a plain string.
        while i < chars.len() {
            match chars[i] {
                '\\' if i + 1 < chars.len() => {
                    push_blank(code, chars[i], line);
                    push_blank(code, chars[i + 1], line);
                    i += 2;
                }
                '"' => {
                    push_blank(code, chars[i], line);
                    return i + 1;
                }
                c => {
                    push_blank(code, c, line);
                    i += 1;
                }
            }
        }
        return i;
    }
    // Raw string: no escapes; closing is `"` followed by `hashes` hash
    // marks.
    while i < chars.len() {
        if chars[i] == '"' {
            let mut j = i + 1;
            let mut h = 0usize;
            while h < hashes && j < chars.len() && chars[j] == '#' {
                j += 1;
                h += 1;
            }
            if h == hashes {
                for &ch in &chars[i..j] {
                    push_blank(code, ch, line);
                }
                return j;
            }
        }
        push_blank(code, chars[i], line);
        i += 1;
    }
    i
}

fn push_blank(code: &mut Vec<char>, c: char, line: &mut usize) {
    if c == '\n' {
        code.push('\n');
        *line += 1;
    } else {
        code.push(' ');
    }
}

/// If a `'` at `i` opens a char literal, return the offset one past its
/// closing quote; `None` when it is a lifetime tick.
fn char_literal_end(chars: &[char], i: usize) -> Option<usize> {
    let next = *chars.get(i + 1)?;
    if next == '\\' {
        // Escaped char: '\n', '\u{…}', '\\', '\''…
        let mut j = i + 2;
        if chars.get(j) == Some(&'u') && chars.get(j + 1) == Some(&'{') {
            j += 2;
            while j < chars.len() && chars[j] != '}' {
                j += 1;
            }
            j += 1;
        } else {
            j += 1;
        }
        if chars.get(j) == Some(&'\'') {
            return Some(j + 1);
        }
        return None;
    }
    if is_ident_char(next) {
        // 'a' is a char literal iff a quote follows the single ident char
        // run; 'static (no closing quote right after) is a lifetime.
        let mut j = i + 1;
        while j < chars.len() && is_ident_char(chars[j]) {
            j += 1;
        }
        if chars.get(j) == Some(&'\'') && j == i + 2 {
            return Some(j + 1);
        }
        return None;
    }
    if next != '\'' && chars.get(i + 2) == Some(&'\'') {
        // Punctuation char literal like '(' or '-'.
        return Some(i + 3);
    }
    None
}

pub fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_blanked_and_collected() {
        let src = "let x = 1; // unsafe HashMap\nlet y = 2;\n";
        let f = FileSource::parse(src);
        assert!(!f.code.contains("unsafe"));
        assert!(f.comment_on(1).contains("unsafe HashMap"));
        assert_eq!(f.comment_on(2), "");
        assert_eq!(f.raw.len(), f.code.len());
    }

    #[test]
    fn strings_are_blanked() {
        let src = "let s = \"HashMap.iter()\"; let t = r#\"unsafe\"# ;";
        let f = FileSource::parse(src);
        assert!(!f.code.contains("HashMap"));
        assert!(!f.code.contains("unsafe"));
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let f = FileSource::parse(src);
        assert!(f.code.contains("'a"));
        assert!(!f.code.contains("'x'"));
    }

    #[test]
    fn block_comments_span_lines() {
        let src = "a\n/* one\ntwo */\nb\n";
        let f = FileSource::parse(src);
        assert!(f.comment_on(2).contains("one"));
        assert!(f.comment_on(3).contains("two"));
        assert!(f.code_blank(2) && f.code_blank(3));
        assert!(!f.code_blank(1));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ tail */ fn main() {}";
        let f = FileSource::parse(src);
        assert!(f.code.contains("fn main"));
        assert!(!f.code.contains("tail"));
        assert!(f.comment_on(1).contains("inner"));
    }

    #[test]
    fn byte_strings_honour_escapes() {
        // Regression: `b"…"` used to take the raw-string (no-escape) path,
        // so an escaped quote ended the literal early and leaked its tail
        // into the code view — flipping everything after it in and out of
        // string state.
        let src = "let s = b\"a\\\"HashMap.iter()\"; let x = 1;";
        let f = FileSource::parse(src);
        assert!(!f.code.contains("HashMap"), "tail leaked: {}", f.code);
        assert!(f.code.contains("let x = 1;"), "code after literal lost");

        // Escaped backslash directly before the closing quote.
        let src = "let s = b\"a\\\\\"; let y = unsafe_token;";
        let f = FileSource::parse(src);
        assert!(f.code.contains("let y = unsafe_token;"));
    }

    #[test]
    fn raw_strings_do_not_escape() {
        // `r"…\"` ends at the quote — the backslash is plain content.
        let src = "let s = r\"trailing\\\"; let x = 1;";
        let f = FileSource::parse(src);
        assert!(f.code.contains("let x = 1;"));
        // Hash-delimited raw string containing a bare quote.
        let src = "let s = r#\"say \"hi\" ok\"#; let x = 2;";
        let f = FileSource::parse(src);
        assert!(!f.code.contains("say"));
        assert!(f.code.contains("let x = 2;"));
        // More hashes than the opener: the surplus stays outside.
        let src = "let s = r##\"inner \"# still\"##; let x = 3;";
        let f = FileSource::parse(src);
        assert!(!f.code.contains("still"));
        assert!(f.code.contains("let x = 3;"));
        // Raw byte string.
        let src = "let s = br#\"x\"y\"#; let x = 4;";
        let f = FileSource::parse(src);
        assert!(f.code.contains("let x = 4;"));
    }

    #[test]
    fn raw_strings_span_lines_and_keep_line_numbers() {
        let src = "let s = r#\"one\ntwo \"quoted\"\nthree\"#;\nlet x = HashMap;\n";
        let f = FileSource::parse(src);
        assert!(!f.code.contains("two"));
        let off = f.code.find("HashMap").expect("code survives");
        let chars_before = f.code[..off].chars().count();
        let (line, _) = f.line_col(chars_before);
        assert_eq!(
            line, 4,
            "line structure must survive multi-line raw strings"
        );
    }

    #[test]
    fn nested_block_comment_torture() {
        // Tight nesting, no separators.
        let f = FileSource::parse("/*/* inner */*/ let x = HashMap;");
        assert!(f.code.contains("let x = HashMap;"));
        // Overlapping close-then-star: `*/*` closes at the `*/`.
        let f = FileSource::parse("/* a */* let x = 1;");
        assert!(f.code.contains("let x = 1;"));
        assert!(f.code.contains('*'), "the stray `*` stays code");
        // `//*` inside a block comment opens a nest (matches rustc).
        let f = FileSource::parse("/*//*/ let hidden = 1;");
        assert!(
            !f.code.contains("hidden"),
            "depth 2 comment is unterminated; rest of file is comment"
        );
        // Depth three, closing across lines.
        let f = FileSource::parse("/* 1 /* 2 /* 3 */ 2 */ 1 */ let x = 9;\n");
        assert!(f.code.contains("let x = 9;"));
        assert!(f.comment_on(1).contains('3'));
    }

    #[test]
    fn block_comment_markers_inside_literals_are_inert() {
        let f = FileSource::parse("let s = \"/* not a comment\"; let x = 1;");
        assert!(f.code.contains("let x = 1;"));
        let f = FileSource::parse("let s = r#\"*/ also not\"#; let y = 2;");
        assert!(f.code.contains("let y = 2;"));
        // And the reverse: a quote inside a block comment does not open a
        // string.
        let f = FileSource::parse("/* \" */ let z = 3;");
        assert!(f.code.contains("let z = 3;"));
    }
}
