//! Fixture: a documented unsafe block passes.
pub fn first(xs: &[u8]) -> u8 {
    assert!(!xs.is_empty());
    // SAFETY: the assert above guarantees index 0 is in bounds.
    unsafe { *xs.get_unchecked(0) }
}
