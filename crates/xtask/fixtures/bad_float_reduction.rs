//! Fixture: an iterator float reduction outside the fixed-lane kernel
//! layer.
pub fn total(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>()
}
