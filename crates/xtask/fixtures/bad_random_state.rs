//! Fixture: explicit RandomState anywhere is ambient nondeterminism.
use std::collections::hash_map::RandomState;

pub fn build() -> RandomState {
    RandomState::new()
}
