//! Cross-file fixture (helper half): a free fn whose return type is a
//! hash-ordered container.

use std::collections::HashMap;

pub fn visit_counts() -> HashMap<u64, u32> {
    HashMap::new()
}
