//! Fixture: an `&mut self` method on `Database` that writes fact storage
//! without touching the journal/epoch path.

pub struct Database {
    slots: Vec<u32>,
    live: usize,
}

impl Database {
    pub fn clobber(&mut self, i: usize, v: u32) {
        self.slots[i] = v;
        self.live = self.live.saturating_sub(1);
    }
}
