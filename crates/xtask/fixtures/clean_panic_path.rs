//! Fixture: every potential panic carries a documented contract — a
//! `# Panics` doc section, or a provable fixed-size array bound.

/// Reads the head element.
///
/// # Panics
///
/// Panics when `xs` is empty — callers guarantee nonempty input.
pub fn head(xs: &[u32]) -> u32 {
    *xs.first().expect("nonempty by contract")
}

pub fn lane_zero() -> f32 {
    let lanes = [0.0f32; 4];
    lanes[0]
}
