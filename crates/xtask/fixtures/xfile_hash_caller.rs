//! Cross-file fixture (caller half): iterates the helper's returned
//! `HashMap` — only the workspace index can see the return type.

pub fn total() -> u64 {
    let mut n = 0u64;
    for (_, c) in crate::stats::visit_counts() {
        n += u64::from(c);
    }
    n
}
