//! Fixture: STEMBED_* reads are the documented configuration surface.
const SHARDS_ENV: &str = "STEMBED_SHARDS";

pub fn shards() -> Option<String> {
    std::env::var(SHARDS_ENV).ok()
}

pub fn kernel() -> Option<String> {
    std::env::var("STEMBED_KERNEL").ok()
}
