//! Fixture: a float accumulator updated inside a loop over a hash-ordered
//! source — reassociation across runs.

use std::collections::HashMap;

pub fn total(weights: &HashMap<u64, f64>) -> f64 {
    let mut acc = 0.0;
    for (_, w) in weights {
        acc += *w;
    }
    acc
}
