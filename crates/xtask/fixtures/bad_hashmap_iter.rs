//! Fixture: iterating a HashMap in a compute crate must be flagged.
use std::collections::{HashMap, HashSet};

pub fn totals(map: &HashMap<u32, f64>) -> f64 {
    let mut t = 0.0;
    for (_k, v) in map.iter() {
        t += v;
    }
    t
}

pub fn names(set: &HashSet<String>) -> Vec<String> {
    set.iter().cloned().collect()
}
