//! Cross-file fixture: the scalar reference sibling for
//! `bad_target_feature.rs`'s `frob`, declared in another file.

pub fn frob_scalar(xs: &mut [f32]) {
    for x in xs {
        *x *= 2.0;
    }
}
