//! Fixture: reading an env var outside the STEMBED_* allowlist.
pub fn home() -> Option<String> {
    std::env::var("HOME").ok()
}
