//! Fixture: the kernel convention — an accelerated fn with a scalar
//! reference sibling of the same lane order.

// SAFETY: caller must ensure the CPU supports AVX2.
#[target_feature(enable = "avx2")]
pub unsafe fn frob(xs: &mut [f32]) {
    frob_scalar(xs);
}

pub fn frob_scalar(xs: &mut [f32]) {
    for x in xs {
        *x *= 2.0;
    }
}
