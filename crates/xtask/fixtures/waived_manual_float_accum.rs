//! Fixture: both the hash iteration and the accumulator carry reasoned
//! waivers — zero findings, two reported waivers.

use std::collections::HashMap;

pub fn checksum(weights: &HashMap<u64, f64>) -> f64 {
    let mut acc = 0.0;
    // lint: nondeterministic-iter-ok(diagnostic checksum, never feeds an output)
    for (_, w) in weights {
        // lint: manual-float-accumulation-ok(diagnostic checksum, order noise accepted)
        acc += *w;
    }
    acc
}
