//! Fixture: a waiver with a reason silences the finding and is reported.
use std::collections::HashMap;

pub fn relabel(map: &mut HashMap<u32, u32>) {
    // Order-insensitive in-place rewrite.
    // lint: nondeterministic-iter-ok(per-entry rewrite, visit order cannot influence results)
    for v in map.values_mut() {
        *v += 1;
    }
}
