//! Fixture: an unsafe block without a SAFETY: comment.
pub fn first(xs: &[u8]) -> u8 {
    unsafe { *xs.get_unchecked(0) }
}
