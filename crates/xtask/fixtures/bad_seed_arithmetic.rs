//! Fixture: hand-derived RNG streams — the stream-overlap bug class the
//! seed-arithmetic rule exists to catch, including laundering through a
//! plain `let`.

pub fn shard_streams(seed: u64) -> (u64, u64) {
    let laundered = seed;
    (seed ^ 1, laundered.wrapping_add(2))
}
