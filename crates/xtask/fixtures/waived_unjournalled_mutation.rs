//! Fixture: a reasoned waiver on the line above the flagged fn.

pub struct Database {
    slots: Vec<u32>,
}

impl Database {
    // lint: unjournalled-mutation-ok(checkpoint load replaces the journal wholesale)
    pub fn load_checkpoint(&mut self, slots: Vec<u32>) {
        self.slots = slots;
    }
}
