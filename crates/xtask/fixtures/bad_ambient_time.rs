//! Fixture: wall-clock reads in a compute crate must be flagged.
pub fn elapsed_secs() -> f64 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_secs_f64()
}
