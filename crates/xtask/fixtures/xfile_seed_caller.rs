//! Cross-file fixture (caller half): the seed is laundered through a
//! local whose name says nothing — provenance comes from the index.

pub fn shard(run: u64) -> u64 {
    let s = crate::ids::session_seed(run);
    s ^ 0x5bd1
}
