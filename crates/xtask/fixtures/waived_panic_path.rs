//! Fixture: a same-line waiver silences the panic-path finding.

pub fn checked(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap() // lint: panic-path-ok(fixture exercises same-line waivers)
}
