//! Cross-file fixture (helper half): a seed-producing helper (`seed` in
//! the name, returns `u64`).

pub fn session_seed(run: u64) -> u64 {
    run
}
