//! Fixture: a #[target_feature] fn without a scalar reference sibling.

// SAFETY: caller must ensure the CPU supports AVX2.
#[target_feature(enable = "avx2")]
pub unsafe fn frob(xs: &mut [f32]) {
    for x in xs {
        *x *= 2.0;
    }
}
