//! Fixture: a reasoned waiver silences the seed-arithmetic finding.

pub fn golden_mix(seed: u64) -> u64 {
    // lint: seed-arithmetic-ok(golden-ratio finalizer documented in DESIGN notes)
    seed ^ 0x9e37_79b9
}
