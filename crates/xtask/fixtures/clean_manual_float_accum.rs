//! Fixture: the same accumulation over an ordered slice is fine — the
//! iteration order is the storage order.

pub fn total(weights: &[f64]) -> f64 {
    let mut acc = 0.0;
    for w in weights {
        acc += *w;
    }
    acc
}
