//! Fixture: undocumented panics on a production compute path — an
//! `.unwrap()` and a literal index with no provable bound.

pub fn head(xs: &[u32]) -> u32 {
    let first = xs.first().unwrap();
    *first + xs[0]
}
