//! Fixture: the sanctioned derivation — named stream constants routed
//! through `derive_seed`, no hand arithmetic anywhere.

const STREAM_WALK: u64 = 1;

pub fn walk_seed(seed: u64) -> u64 {
    stembed_runtime::derive_seed(seed, STREAM_WALK)
}
