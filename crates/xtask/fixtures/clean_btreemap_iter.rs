//! Fixture: ordered containers iterate freely; HashMap point lookups are
//! fine too — only *iteration* is order-sensitive.
use std::collections::{BTreeMap, HashMap};

pub fn totals(map: &BTreeMap<u32, f64>) -> f64 {
    let mut t = 0.0;
    for (_k, v) in map.iter() {
        t += v;
    }
    t
}

pub fn lookup(index: &HashMap<u32, f64>, k: u32) -> Option<f64> {
    index.get(&k).copied()
}
