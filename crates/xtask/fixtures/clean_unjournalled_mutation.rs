//! Fixture: the same storage write, journalled through the primitive.

pub struct Database {
    slots: Vec<u32>,
}

impl Database {
    fn record_mutation(&mut self, i: usize) {
        let _ = i;
    }

    pub fn store(&mut self, i: usize, v: u32) {
        self.record_mutation(i);
        self.slots[i] = v;
    }
}
