//! Fixture: the rand crate bypasses the vendored seeded RNG.
use rand::Rng;

pub fn draw() -> u64 {
    rand::thread_rng().gen()
}
