//! Self-tests: every rule must fire on its violating fixture, stay quiet
//! on the clean one, and honour waivers — plus the capstone check that the
//! workspace itself is lint-clean.
//!
//! Fixtures live in `crates/xtask/fixtures/` (excluded from the workspace
//! walk — `fixtures` is a skipped directory) and are linted here through
//! [`xtask::lint_source`] under *synthetic* workspace paths, so the same
//! file can be exercised as a compute-crate source or as an exempt one.

use xtask::rules::Rule;

/// Lint `source` as if it lived at `rel_path`; return the fired rules.
fn rules_at(rel_path: &str, source: &str) -> Vec<Rule> {
    let (findings, _) = xtask::lint_source(rel_path, source);
    findings.into_iter().map(|f| f.rule).collect()
}

const COMPUTE_PATH: &str = "crates/core/src/fixture.rs";

#[test]
fn hashmap_iteration_in_compute_crate_fires() {
    let src = include_str!("../fixtures/bad_hashmap_iter.rs");
    let rules = rules_at(COMPUTE_PATH, src);
    assert!(
        rules
            .iter()
            .filter(|r| **r == Rule::NondeterministicIter)
            .count()
            >= 2,
        "expected the for-loop and the .iter() chain to fire: {rules:?}"
    );
}

#[test]
fn hashmap_iteration_outside_compute_crates_is_exempt() {
    // Same source under a non-compute crate: experiment harness code may
    // iterate hash maps (it never feeds the determinism contract).
    let src = include_str!("../fixtures/bad_hashmap_iter.rs");
    assert_eq!(rules_at("crates/datasets/src/fixture.rs", src), vec![]);
}

#[test]
fn btreemap_iteration_and_hashmap_lookup_are_clean() {
    let src = include_str!("../fixtures/clean_btreemap_iter.rs");
    assert_eq!(rules_at(COMPUTE_PATH, src), vec![]);
}

#[test]
fn waiver_silences_and_is_reported() {
    let src = include_str!("../fixtures/waived_hashmap_iter.rs");
    let (findings, waivers) = xtask::lint_source(COMPUTE_PATH, src);
    assert_eq!(findings, vec![], "waived finding must not fire");
    assert_eq!(waivers.len(), 1);
    assert_eq!(waivers[0].rule, Rule::NondeterministicIter);
    assert!(waivers[0].reason.contains("per-entry rewrite"));
}

#[test]
fn waiver_without_reason_does_not_waive() {
    let src = "use std::collections::HashMap;\n\
               pub fn f(m: &HashMap<u32, u32>) -> usize {\n\
               // lint: nondeterministic-iter-ok()\n\
               m.iter().count()\n\
               }\n";
    let (findings, waivers) = xtask::lint_source(COMPUTE_PATH, src);
    assert_eq!(findings.len(), 1, "empty reason must not waive");
    assert_eq!(waivers, vec![]);
}

#[test]
fn ambient_time_fires_in_compute_crates_only() {
    let src = include_str!("../fixtures/bad_ambient_time.rs");
    assert_eq!(rules_at(COMPUTE_PATH, src), vec![Rule::AmbientTime]);
    // Bench code measures wall time by design.
    assert_eq!(rules_at("crates/core/benches/fixture.rs", src), vec![]);
}

#[test]
fn random_state_fires_anywhere() {
    let src = include_str!("../fixtures/bad_random_state.rs");
    let rules = rules_at("crates/datasets/src/fixture.rs", src);
    assert!(
        rules.contains(&Rule::RandomState),
        "RandomState is banned even outside compute crates: {rules:?}"
    );
}

#[test]
fn rand_crate_fires_anywhere() {
    let src = include_str!("../fixtures/bad_rand_crate.rs");
    let rules = rules_at("crates/datasets/src/fixture.rs", src);
    assert!(rules.contains(&Rule::RandCrate), "{rules:?}");
}

#[test]
fn env_read_allowlist() {
    let bad = include_str!("../fixtures/bad_env_read.rs");
    assert_eq!(rules_at(COMPUTE_PATH, bad), vec![Rule::EnvRead]);
    let clean = include_str!("../fixtures/clean_env_read.rs");
    assert_eq!(rules_at(COMPUTE_PATH, clean), vec![]);
}

#[test]
fn undocumented_unsafe_fires_and_safety_comment_passes() {
    let bad = include_str!("../fixtures/bad_unsafe.rs");
    assert_eq!(rules_at(COMPUTE_PATH, bad), vec![Rule::UndocumentedUnsafe]);
    let clean = include_str!("../fixtures/clean_unsafe.rs");
    assert_eq!(rules_at(COMPUTE_PATH, clean), vec![]);
}

#[test]
fn unsafe_rule_applies_even_in_test_code() {
    // #[cfg(test)] regions are exempt from the compute rules, not from the
    // unsafe rule — UB in a test is still UB.
    let src = "#[cfg(test)]\n\
               mod tests {\n\
               #[test]\n\
               fn t() {\n\
               let xs = [1u8];\n\
               let _ = unsafe { *xs.as_ptr() };\n\
               }\n\
               }\n";
    assert_eq!(rules_at(COMPUTE_PATH, src), vec![Rule::UndocumentedUnsafe]);
}

#[test]
fn target_feature_needs_scalar_sibling() {
    let bad = include_str!("../fixtures/bad_target_feature.rs");
    assert_eq!(
        rules_at(COMPUTE_PATH, bad),
        vec![Rule::MissingScalarSibling]
    );
    let clean = include_str!("../fixtures/clean_target_feature.rs");
    assert_eq!(rules_at(COMPUTE_PATH, clean), vec![]);
}

#[test]
fn float_reduction_exempt_only_in_kernel_layer() {
    let src = include_str!("../fixtures/bad_float_reduction.rs");
    assert_eq!(
        rules_at(COMPUTE_PATH, src),
        vec![Rule::UnfusedFloatReduction]
    );
    // The fixed-lane layers own their reductions.
    assert_eq!(rules_at("crates/linalg/src/fixture.rs", src), vec![]);
    assert_eq!(rules_at("crates/runtime/src/kernel.rs", src), vec![]);
}

#[test]
fn compute_rules_skip_test_regions() {
    let src = "#[cfg(test)]\n\
               mod tests {\n\
               use std::collections::HashMap;\n\
               #[test]\n\
               fn t() {\n\
               let m: HashMap<u32, u32> = HashMap::new();\n\
               let _ = m.iter().count();\n\
               let _ = std::time::Instant::now();\n\
               }\n\
               }\n";
    assert_eq!(rules_at(COMPUTE_PATH, src), vec![]);
}

#[test]
fn seed_arithmetic_fires_through_laundering() {
    let src = include_str!("../fixtures/bad_seed_arithmetic.rs");
    let rules = rules_at(COMPUTE_PATH, src);
    assert_eq!(
        rules,
        vec![Rule::SeedArithmetic, Rule::SeedArithmetic],
        "expected both `seed ^ 1` and the laundered `.wrapping_add`: {rules:?}"
    );
    let clean = include_str!("../fixtures/clean_seed_arithmetic.rs");
    assert_eq!(rules_at(COMPUTE_PATH, clean), vec![]);
}

#[test]
fn seed_arithmetic_waiver_is_reported() {
    let src = include_str!("../fixtures/waived_seed_arithmetic.rs");
    let (findings, waivers) = xtask::lint_source(COMPUTE_PATH, src);
    assert_eq!(findings, vec![]);
    assert_eq!(waivers.len(), 1);
    assert_eq!(waivers[0].rule, Rule::SeedArithmetic);
}

#[test]
fn seed_arithmetic_exempt_in_derivation_layer() {
    // The SplitMix64 finalizer *is* seed arithmetic; the sanctioned layer
    // is exempt by file path.
    let src = include_str!("../fixtures/bad_seed_arithmetic.rs");
    assert_eq!(rules_at("crates/runtime/src/seed.rs", src), vec![]);
}

#[test]
fn unjournalled_mutation_fires_and_journalled_is_clean() {
    let bad = include_str!("../fixtures/bad_unjournalled_mutation.rs");
    let (findings, _) = xtask::lint_source(COMPUTE_PATH, bad);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, Rule::UnjournalledMutation);
    assert!(
        findings[0].end_line > findings[0].line,
        "the finding spans the whole method body"
    );
    assert!(findings[0].message.contains("clobber"));

    let clean = include_str!("../fixtures/clean_unjournalled_mutation.rs");
    assert_eq!(rules_at(COMPUTE_PATH, clean), vec![]);
}

#[test]
fn unjournalled_mutation_waiver_is_reported() {
    let src = include_str!("../fixtures/waived_unjournalled_mutation.rs");
    let (findings, waivers) = xtask::lint_source(COMPUTE_PATH, src);
    assert_eq!(findings, vec![]);
    assert_eq!(waivers.len(), 1);
    assert_eq!(waivers[0].rule, Rule::UnjournalledMutation);
}

#[test]
fn manual_float_accumulation_fires_over_hash_sources_only() {
    let bad = include_str!("../fixtures/bad_manual_float_accum.rs");
    let rules = rules_at(COMPUTE_PATH, bad);
    // The hash loop itself also fires the iteration rule; both contracts
    // are broken and both must show up.
    assert!(rules.contains(&Rule::ManualFloatAccumulation), "{rules:?}");
    assert!(rules.contains(&Rule::NondeterministicIter), "{rules:?}");

    let clean = include_str!("../fixtures/clean_manual_float_accum.rs");
    assert_eq!(rules_at(COMPUTE_PATH, clean), vec![]);
}

#[test]
fn manual_float_accumulation_waivers_cover_both_rules() {
    let src = include_str!("../fixtures/waived_manual_float_accum.rs");
    let (findings, waivers) = xtask::lint_source(COMPUTE_PATH, src);
    assert_eq!(findings, vec![]);
    let mut waived: Vec<Rule> = waivers.iter().map(|w| w.rule).collect();
    waived.sort_by_key(|r| r.name());
    assert_eq!(
        waived,
        vec![Rule::ManualFloatAccumulation, Rule::NondeterministicIter]
    );
}

#[test]
fn panic_path_fires_on_unwrap_and_unproven_literal_index() {
    let src = include_str!("../fixtures/bad_panic_path.rs");
    let (findings, _) = xtask::lint_source(COMPUTE_PATH, src);
    let rules: Vec<Rule> = findings.iter().map(|f| f.rule).collect();
    assert_eq!(
        rules,
        vec![Rule::PanicPath, Rule::PanicPath],
        "{findings:?}"
    );
    assert!(findings.iter().any(|f| f.message.contains("`.unwrap()`")));
    assert!(findings.iter().any(|f| f.message.contains("literal index")));
}

#[test]
fn panic_path_documented_contracts_and_proven_bounds_are_clean() {
    // A `# Panics` doc section covers the `.expect`; the literal index is
    // proven in bounds by the `[0.0f32; 4]` initialiser.
    let src = include_str!("../fixtures/clean_panic_path.rs");
    assert_eq!(rules_at(COMPUTE_PATH, src), vec![]);
}

#[test]
fn panic_path_waiver_works_on_the_same_line() {
    let src = include_str!("../fixtures/waived_panic_path.rs");
    let (findings, waivers) = xtask::lint_source(COMPUTE_PATH, src);
    assert_eq!(findings, vec![]);
    assert_eq!(waivers.len(), 1);
    assert_eq!(waivers[0].rule, Rule::PanicPath);
}

#[test]
fn waiver_line_above_and_same_line_are_equivalent() {
    let above = "pub fn f(xs: &[u32]) -> u32 {\n\
                 // lint: panic-path-ok(caller contract)\n\
                 xs.first().copied().unwrap()\n\
                 }\n";
    let same = "pub fn f(xs: &[u32]) -> u32 {\n\
                xs.first().copied().unwrap() // lint: panic-path-ok(caller contract)\n\
                }\n";
    for src in [above, same] {
        let (findings, waivers) = xtask::lint_source(COMPUTE_PATH, src);
        assert_eq!(findings, vec![], "waiver placement must not matter");
        assert_eq!(waivers.len(), 1);
    }
}

#[test]
fn index_resolves_helper_returned_hashmap_across_files() {
    let helper = include_str!("../fixtures/xfile_hash_helper.rs");
    let caller = include_str!("../fixtures/xfile_hash_caller.rs");
    // Linted alone the caller is silent — nothing says the return type.
    assert_eq!(rules_at("crates/core/src/caller.rs", caller), vec![]);
    // With the helper in the index, the call-site iteration fires.
    let (findings, _) = xtask::lint_files(&[
        ("crates/core/src/stats.rs", helper),
        ("crates/core/src/caller.rs", caller),
    ]);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, Rule::NondeterministicIter);
    assert_eq!(findings[0].file, "crates/core/src/caller.rs");
}

#[test]
fn index_resolves_seed_laundered_through_a_local_across_files() {
    let helper = include_str!("../fixtures/xfile_seed_helper.rs");
    let caller = include_str!("../fixtures/xfile_seed_caller.rs");
    assert_eq!(rules_at("crates/core/src/caller.rs", caller), vec![]);
    let (findings, _) = xtask::lint_files(&[
        ("crates/core/src/ids.rs", helper),
        ("crates/core/src/caller.rs", caller),
    ]);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, Rule::SeedArithmetic);
    assert_eq!(findings[0].file, "crates/core/src/caller.rs");
}

#[test]
fn index_resolves_scalar_sibling_across_files() {
    let simd = include_str!("../fixtures/bad_target_feature.rs");
    let sibling = include_str!("../fixtures/xfile_scalar_sibling.rs");
    // Alone: no sibling in sight.
    assert_eq!(
        rules_at(COMPUTE_PATH, simd),
        vec![Rule::MissingScalarSibling]
    );
    // With the sibling declared in another file, the index resolves it.
    let (findings, _) = xtask::lint_files(&[
        ("crates/core/src/simd.rs", simd),
        ("crates/core/src/scalar.rs", sibling),
    ]);
    assert_eq!(findings, vec![], "cross-file sibling must satisfy the rule");
}

#[test]
fn compute_rules_skip_cfg_feature_regions() {
    // The `timing` pattern: clock reads compiled in behind a cargo
    // feature are diagnostics by construction.
    let src = "#[cfg(feature = \"timing\")]\n\
               mod stopwatch {\n\
               pub fn now() -> std::time::Instant {\n\
               std::time::Instant::now()\n\
               }\n\
               }\n";
    assert_eq!(rules_at(COMPUTE_PATH, src), vec![]);
}

#[test]
fn waivers_json_snapshot() {
    let src = include_str!("../fixtures/waived_hashmap_iter.rs");
    let (findings, waivers) = xtask::lint_source(COMPUTE_PATH, src);
    assert_eq!(findings, vec![]);
    let json = xtask::diag::waivers_json(&waivers);
    let expected = "{\n  \"schema_version\": 2,\n  \"total\": 1,\n  \"counts\": {\n    \"nondeterministic-iter\": 1,\n    \"ambient-time\": 0,\n    \"random-state\": 0,\n    \"rand-crate\": 0,\n    \"env-read\": 0,\n    \"undocumented-unsafe\": 0,\n    \"missing-scalar-sibling\": 0,\n    \"unfused-float-reduction\": 0,\n    \"seed-arithmetic\": 0,\n    \"unjournalled-mutation\": 0,\n    \"manual-float-accumulation\": 0,\n    \"panic-path\": 0\n  },\n  \"waivers\": [\n    {\"file\": \"crates/core/src/fixture.rs\", \"line\": 7, \"rule\": \"nondeterministic-iter\", \"reason\": \"per-entry rewrite, visit order cannot influence results\"}\n  ]\n}";
    assert_eq!(json, expected, "got:\n{json}");
}

#[test]
fn cli_exits_two_on_unreadable_root() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--root", "/nonexistent/xtask-lint-root"])
        .output()
        .expect("run xtask");
    assert_eq!(out.status.code(), Some(2), "i/o failure must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("i/o error"), "{stderr}");
}

#[test]
fn cli_exits_nonzero_on_violations_and_zero_when_clean() {
    let dir = std::env::temp_dir().join(format!("xtask-cli-{}", std::process::id()));
    let src_dir = dir.join("crates/core/src");
    std::fs::create_dir_all(&src_dir).expect("temp tree");
    std::fs::write(
        src_dir.join("lib.rs"),
        include_str!("../fixtures/bad_unsafe.rs"),
    )
    .expect("write fixture");

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--root"])
        .arg(&dir)
        .output()
        .expect("run xtask");
    assert_eq!(out.status.code(), Some(1), "violations must exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("error[xtask::undocumented-unsafe]"),
        "rustc-style diagnostic expected, got:\n{stderr}"
    );

    std::fs::write(
        src_dir.join("lib.rs"),
        include_str!("../fixtures/clean_unsafe.rs"),
    )
    .expect("write fixture");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--quiet", "--root"])
        .arg(&dir)
        .output()
        .expect("run xtask");
    assert_eq!(out.status.code(), Some(0), "clean tree must exit 0");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn workspace_is_lint_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let report = xtask::lint_root(&root).expect("walk the workspace");
    assert!(
        report.files_scanned > 100,
        "walked {}",
        report.files_scanned
    );
    let rendered: Vec<String> = report.findings.iter().map(xtask::diag::render).collect();
    assert!(
        report.findings.is_empty(),
        "workspace must be lint-clean:\n{}",
        rendered.join("\n")
    );
    // Every waiver in force carries a reason (parse enforces it); the
    // count is tracked so silent growth shows up in review.
    assert!(
        report.waivers.iter().all(|w| !w.reason.trim().is_empty()),
        "waivers must carry reasons"
    );
    // The PR 10 sweep drove the inventory down to 4 (two iteration-order
    // waivers with commutative consumers, two serial-reduction waivers in
    // ml::smo). New waivers are a reviewed event, not a default.
    assert!(
        report.waivers.len() <= 4,
        "waiver inventory grew past the audited 4:\n{:#?}",
        report.waivers
    );
}
