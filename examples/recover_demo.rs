//! Durable-pipeline walkthrough: train both embedders, put them under the
//! write-ahead log, run the one-by-one insertion protocol (§VI-E) with a
//! mid-run snapshot, then **drop the pipeline without any shutdown
//! handshake** — the in-memory state is gone, exactly as after `kill -9` —
//! and rebuild it from disk with [`repro::durable::DurablePipeline::recover`].
//!
//! The recovered state is compared against the pre-crash pipeline with
//! plain `==` on the canonical state bytes (database slots, epoch, ϕ/ψ,
//! SGNS vectors): recovery is not "approximately right", it is
//! byte-identical, because the WAL replays mutations in epoch order and
//! re-runs the deterministic `extend` for each logged `(seed, facts)` frame
//! (see `DURABILITY.md`).
//!
//! Run with `cargo run --release --example recover_demo`. Set
//! `RECOVER_DEMO_DIR` to choose the WAL directory (default: a fresh
//! directory under the system temp dir, removed on success).

use reldb::{cascade_delete, movies, restore_journal};
use repro::durable::{DurablePipeline, DEFAULT_SYNC_EVERY};
use std::sync::Arc;
use stembed_core::{ForwardConfig, ForwardEmbedder, Node2VecEmbedder};
use stembed_wal::{StdVfs, Vfs};

fn main() {
    let dir = std::env::var("RECOVER_DEMO_DIR").unwrap_or_else(|_| {
        std::env::temp_dir()
            .join(format!("stembed-recover-demo-{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    });
    let _ = std::fs::remove_dir_all(&dir);

    // The dynamic setting: two actors (and their CAST rows) leave the
    // database, the embedders train on the remainder, and the protocol
    // brings them back one journal at a time.
    let (mut db, ids) = movies::movies_database_labeled();
    let j_a5 = cascade_delete(&mut db, ids["a5"], true).expect("cascade a5");
    let j_a4 = cascade_delete(&mut db, ids["a4"], true).expect("cascade a4");
    let actors = db.schema().relation_id("ACTORS").expect("ACTORS");
    let fwd = ForwardEmbedder::train(&db, actors, &ForwardConfig::small(), 41).expect("train fwd");
    let n2v = Node2VecEmbedder::train(&db, &node2vec::Node2VecConfig::small(), 43);
    println!(
        "trained on {} live facts (epoch {})",
        db.schema()
            .relations()
            .iter()
            .enumerate()
            .map(|(i, _)| db.fact_ids(reldb::RelationId(i as u32)).len())
            .sum::<usize>(),
        db.epoch()
    );

    let vfs: Arc<dyn Vfs> = Arc::new(StdVfs);
    let mut pipe = DurablePipeline::create(vfs.clone(), &dir, db, fwd, n2v, DEFAULT_SYNC_EVERY)
        .expect("create durable pipeline");
    println!("wal dir: {dir}");

    for (round, journal) in [j_a4, j_a5].iter().enumerate() {
        let restored = pipe
            .mutate(|db| restore_journal(db, journal))
            .expect("restore");
        pipe.extend(&restored, 100 + round as u64).expect("extend");
        println!(
            "round {round}: restored {} facts, extended both embedders (lsn {})",
            restored.len(),
            pipe.last_lsn().expect("lsn")
        );
        if round == 0 {
            let lsn = pipe.snapshot().expect("snapshot");
            println!("round {round}: snapshot committed at lsn {lsn}, WAL rotated");
        }
    }
    pipe.sync().expect("sync");

    let stats = pipe.wal_stats();
    let expected_lsn = pipe.last_lsn().expect("lsn");
    let expected = pipe.state_bytes();
    println!(
        "pre-crash: lsn {expected_lsn}, epoch {}, wal {{ frames: {}, bytes: {}, fsyncs: {} }}, \
         snapshot {} bytes",
        pipe.db().epoch(),
        stats.frames,
        stats.bytes,
        stats.fsyncs,
        pipe.latest_snapshot_bytes()
            .expect("snapshot bytes")
            .unwrap_or(0),
    );

    // The "crash": no shutdown, no final snapshot — the process state is
    // simply gone. Everything after this line works from disk alone.
    drop(pipe);

    let recovered = DurablePipeline::recover(vfs.clone(), &dir, DEFAULT_SYNC_EVERY)
        .expect("recover from wal dir");
    assert_eq!(
        recovered.last_lsn().expect("lsn"),
        expected_lsn,
        "recovered to a different lsn"
    );
    assert_eq!(
        recovered.state_bytes(),
        expected,
        "recovered state differs from the pre-crash pipeline"
    );
    println!(
        "recovered: lsn {}, epoch {} — state is byte-identical to the pre-crash run",
        recovered.last_lsn().expect("lsn"),
        recovered.db().epoch()
    );

    // Recovery is non-destructive: doing it again gives the same bytes.
    drop(recovered);
    let again =
        DurablePipeline::recover(vfs, &dir, DEFAULT_SYNC_EVERY).expect("recover a second time");
    assert_eq!(again.state_bytes(), expected, "second recovery diverged");
    println!("second recovery: byte-identical again");

    if std::env::var("RECOVER_DEMO_DIR").is_err() {
        let _ = std::fs::remove_dir_all(&dir);
    }
    println!("ok");
}
