//! The bipartite fact/value graph of the movie database (paper Figure 3).
//!
//! Prints the neighbourhoods shown in the figure: `v(m4)`, `v(c2)`,
//! `v(s3)`, `v(a4)`, `v(a5)` — and demonstrates the FK identification (the
//! studio id `s03` is one shared node for `MOVIES.studio` and
//! `STUDIOS.sid`).
//!
//! Run with: `cargo run --release --example graph_view`

use stembed::dbgraph::DbGraph;
use stembed::reldb::movies::movies_database_labeled;
use stembed::reldb::Value;

fn main() {
    let (db, ids) = movies_database_labeled();
    let graph = DbGraph::build(&db);
    let schema = db.schema();

    println!(
        "G_D: {} fact nodes + {} value nodes, {} edges\n",
        graph.fact_node_count(),
        graph.value_node_count(),
        graph.graph().edge_count()
    );

    for label in ["m4", "c2", "s3", "a4", "a5"] {
        let node = graph.fact_node(ids[label]).expect("fact node exists");
        println!("{} = {}:", label, graph.describe(schema, node));
        for &n in graph.graph().neighbors(node) {
            println!("    — {}", graph.describe(schema, n));
        }
    }

    // The identification at work: MOVIES.studio = s03 and STUDIOS.sid = s03
    // are ONE node…
    let movies = schema.relation_id("MOVIES").unwrap();
    let studios = schema.relation_id("STUDIOS").unwrap();
    let via_movies = graph.value_node(movies, 1, &Value::Text("s03".into()));
    let via_studios = graph.value_node(studios, 0, &Value::Text("s03".into()));
    assert_eq!(via_movies, via_studios);
    println!("\nFK identification: u(MOVIES, studio, s03) == u(STUDIOS, sid, s03) ✓");

    // …while equal constants in FK-unrelated columns stay distinct (the
    // paper's \"Universal\" example).
    let title_la = graph.value_node(movies, 2, &Value::Text("Titanic".into()));
    let name_wb = graph.value_node(studios, 1, &Value::Text("Warner Bros.".into()));
    println!(
        "Unrelated columns stay distinct nodes: u(MOVIES, title, Titanic)={:?}, u(STUDIOS, name, Warner Bros.)={:?}",
        title_la.map(|n| n.0),
        name_wb.map(|n| n.0)
    );
}
