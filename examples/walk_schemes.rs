//! Walk schemes and destination distributions (paper Figure 4 and
//! Examples 5.1–5.3).
//!
//! Run with: `cargo run --release --example walk_schemes`

use stembed::core::schemes::enumerate_schemes;
use stembed::core::walkdist::{destination_distribution, destination_value_distribution};
use stembed::core::SchemePlan;
use stembed::reldb::movies::movies_database_labeled;

fn main() {
    let (db, ids) = movies_database_labeled();
    let schema = db.schema();
    let actors = schema.relation_id("ACTORS").unwrap();

    // ---------------------------------------------------------------
    // Figure 4: all walk schemes of length ≤ 3 starting from ACTORS.
    // ---------------------------------------------------------------
    println!("Walk schemes of length ≤ 3 from ACTORS (non-backtracking):");
    let schemes = enumerate_schemes(schema, actors, 3, false);
    for (i, s) in schemes.iter().enumerate() {
        println!(
            "  s{:<2} (len {}): {} → ends at {}",
            i + 1,
            s.len(),
            s.display(schema),
            schema.relation(s.end(schema)).name
        );
    }
    println!(
        "  ({} schemes; the paper's Figure 4 draws 9, merging the two symmetric STUDIOS branches)\n",
        schemes.len()
    );

    // ---------------------------------------------------------------
    // The same schemes factored into a shared prefix plan: every node
    // is a step prefix, every edge one FK step, and evaluating in DFS
    // order computes each distribution as "parent frontier + 1 step".
    // ---------------------------------------------------------------
    let plan = SchemePlan::build(actors, &schemes);
    println!(
        "Factored scheme plan: {} schemes / {} flat steps collapse into {} nodes / {} shared steps:",
        plan.scheme_count(),
        plan.flat_step_count(),
        plan.node_count(),
        plan.shared_step_count()
    );
    for idx in plan.dfs() {
        let node = plan.node(idx);
        let label = match node.step() {
            Some(step) => {
                let src = step.source(schema);
                let dst = step.destination(schema);
                let depart: Vec<&str> = step
                    .depart_attrs(schema)
                    .iter()
                    .map(|&a| schema.relation(src).attributes[a].name.as_str())
                    .collect();
                let arrive: Vec<&str> = step
                    .arrive_attrs(schema)
                    .iter()
                    .map(|&a| schema.relation(dst).attributes[a].name.as_str())
                    .collect();
                format!(
                    "—[{}]→ {}[{}]",
                    depart.join(","),
                    schema.relation(dst).name,
                    arrive.join(",")
                )
            }
            None => format!("start at {}", schema.relation(actors).name),
        };
        println!(
            "  {}{label}{}",
            "  ".repeat(node.depth()),
            if node.is_scheme() {
                ""
            } else {
                "   (shared prefix only)"
            }
        );
    }
    println!();

    // ---------------------------------------------------------------
    // Example 5.2/5.3: the distribution of walks from a1 (DiCaprio)
    // along aid—actor1, movie—mid.
    // ---------------------------------------------------------------
    let s5 = schemes
        .iter()
        .find(|s| {
            s.display(schema).to_string()
                == "ACTORS[aid]—COLLABORATIONS[actor1], COLLABORATIONS[movie]—MOVIES[mid]"
        })
        .expect("the Example 5.2 scheme exists");
    println!(
        "Example 5.2 — destinations of walks from a1 along\n  {}:",
        s5.display(schema)
    );
    let dist = destination_distribution(&db, s5, ids["a1"], 64).unwrap();
    for (fact, p) in &dist.support {
        let title = db.fact(*fact).unwrap().get(2);
        println!("  Pr(destination = {title}) = {p}");
    }

    println!("\nExample 5.3 — destination value distributions:");
    let budget = destination_value_distribution(&db, s5, 4, ids["a1"], 64).unwrap();
    for (v, p) in &budget.support {
        println!("  Pr(budget = {v}M) = {p}");
    }
    let genre = destination_value_distribution(&db, s5, 3, ids["a1"], 64).unwrap();
    for (v, p) in &genre.support {
        println!("  Pr(genre = {v}) = {p}   (Godzilla's ⊥ genre is conditioned away)");
    }
}
