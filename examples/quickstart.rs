//! Quickstart: the movie database of the paper's Figure 2, end to end.
//!
//! 1. Build the database (schema with keys + FKs, 18 facts).
//! 2. Train a static FoRWaRD embedding of the ACTORS relation.
//! 3. Insert a new collaboration and a new actor (the dynamic phase).
//! 4. Extend the embedding — and verify the old vectors did not move.
//!
//! Run with: `cargo run --release --example quickstart`

use stembed::core::{ForwardConfig, ForwardEmbedding};
use stembed::reldb::movies::movies_database_labeled;
use stembed::reldb::Value;

fn main() {
    // ---------------------------------------------------------------
    // Static phase.
    // ---------------------------------------------------------------
    let (mut db, ids) = movies_database_labeled();
    println!(
        "Movie database (Figure 2): {} facts over {} relations\n",
        db.total_facts(),
        db.schema().relation_count()
    );
    println!("{}", db.schema());

    let actors = db.schema().relation_id("ACTORS").expect("ACTORS exists");
    let config = ForwardConfig {
        dim: 16,
        epochs: 8,
        nsamples: 40,
        ..ForwardConfig::small()
    };
    let mut embedding = ForwardEmbedding::train(&db, actors, &config, 42).expect("static training");
    println!(
        "Trained FoRWaRD embedding: {} actors → R^{}, {} walk-scheme targets, final loss {:.4}",
        embedding.len(),
        embedding.dim(),
        embedding.targets().len(),
        embedding.epoch_losses().last().unwrap()
    );

    let dicaprio_before = embedding.embedding(ids["a1"]).unwrap().to_vec();

    // ---------------------------------------------------------------
    // Dynamic phase: a new actor arrives, together with a collaboration
    // referencing them (the paper's batch-arrival scenario).
    // ---------------------------------------------------------------
    let new_actor = db
        .insert_into(
            "ACTORS",
            vec!["a06".into(), "Robbie".into(), Value::Int(60)],
        )
        .expect("insert actor");
    db.insert_into(
        "COLLABORATIONS",
        vec!["a01".into(), "a06".into(), "m06".into()],
    )
    .expect("insert collaboration");
    println!("\nInserted new actor a06 (Robbie) and collaboration (a01, a06, m06).");

    let norm = embedding
        .extend(&db, new_actor, 7)
        .expect("dynamic extension");
    println!("Extended the embedding by solving C·ϕ(f_new) = b (‖ϕ‖ = {norm:.3}).");

    // ---------------------------------------------------------------
    // Stability: the paper's core guarantee.
    // ---------------------------------------------------------------
    let dicaprio_after = embedding.embedding(ids["a1"]).unwrap();
    assert_eq!(
        dicaprio_before.as_slice(),
        dicaprio_after,
        "old embeddings must be bit-identical"
    );
    println!("\nStability check: ϕ(DiCaprio) is bit-identical after the extension ✓");
    let new_vec = embedding.embedding(new_actor).unwrap();
    println!(
        "ϕ(Robbie) = [{}, {}, … ] ({} dims)",
        format_args!("{:.3}", new_vec[0]),
        format_args!("{:.3}", new_vec[1]),
        new_vec.len()
    );
}
