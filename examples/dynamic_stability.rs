//! The stable-embedding property, end to end (paper §III + §VI-E):
//! delete a slice of a database with cascading semantics, train, re-insert
//! tuple by tuple, extend the embedding after each arrival, and verify
//! that (a) no old vector ever moves and (b) the classifier still works on
//! the new tuples.
//!
//! Run with: `cargo run --release --example dynamic_stability`

use stembed::core::{ForwardConfig, ForwardEmbedder, TupleEmbedder};
use stembed::datasets::{self, DatasetParams};
use stembed::ml::{accuracy, OneVsRest, RbfSvm, StandardScaler, SvmParams};
use stembed::reldb::{cascade_delete, restore_journal};
use stembed_runtime::rng::DetRng;

fn main() {
    let params = DatasetParams {
        scale: 0.15,
        ..DatasetParams::default()
    };
    let ds = datasets::mutagenesis::generate(&params);
    let mut db = ds.db.clone();
    let mut rng = DetRng::seed_from_u64(11);

    // Remove 30% of the molecules with On-Delete-Cascade (atoms and bonds
    // go with them), journalling every removal.
    let n_new = ds.sample_count() * 3 / 10;
    let mut pool: Vec<_> = ds.labels.clone();
    for i in (1..pool.len()).rev() {
        let j = rng.random_range(0..=i);
        pool.swap(i, j);
    }
    let new_tuples: Vec<_> = pool.iter().take(n_new).copied().collect();
    let mut journals = Vec::new();
    for (fact, _) in &new_tuples {
        journals.push(cascade_delete(&mut db, *fact, true).expect("cascade"));
    }
    let removed: usize = journals
        .iter()
        .map(stembed::reldb::DeletionJournal::len)
        .sum();
    println!(
        "Removed {n_new} molecules (cascade took {removed} facts total); {} facts remain.",
        db.total_facts()
    );

    // Static phase + classifier on the old tuples.
    let cfg = ForwardConfig {
        dim: 24,
        epochs: 12,
        ..ForwardConfig::small()
    };
    let mut emb = ForwardEmbedder::train(&db, ds.prediction_rel, &cfg, 3).expect("static training");
    let old: Vec<_> = ds
        .labels
        .iter()
        .filter(|(f, _)| new_tuples.iter().all(|(g, _)| g != f))
        .copied()
        .collect();
    let x_old: Vec<Vec<f64>> = old
        .iter()
        .map(|(f, _)| emb.embedding(*f).unwrap().to_vec())
        .collect();
    let y_old: Vec<usize> = old.iter().map(|(_, c)| *c).collect();
    let (scaler, x_old) = StandardScaler::fit_transform(&x_old);
    let model = OneVsRest::fit(&x_old, &y_old, ds.class_count(), || {
        RbfSvm::new(SvmParams {
            c: 10.0,
            ..SvmParams::default()
        })
    });

    let snapshot: Vec<(_, Vec<f64>)> = old
        .iter()
        .map(|(f, _)| (*f, emb.embedding(*f).unwrap().to_vec()))
        .collect();

    // Dynamic phase: one-by-one re-insertion in inverse deletion order.
    for journal in journals.iter().rev() {
        let restored = restore_journal(&mut db, journal).expect("restore");
        emb.extend(&db, &restored, 9).expect("extend");
    }
    println!("Re-inserted every molecule one by one, extending after each arrival.");

    // (a) Stability.
    for (f, before) in &snapshot {
        assert_eq!(emb.embedding(*f).unwrap(), before.as_slice());
    }
    println!(
        "Stability: all {} old vectors bit-identical ✓",
        snapshot.len()
    );

    // (b) Quality on the new tuples.
    let preds: Vec<usize> = new_tuples
        .iter()
        .map(|(f, _)| {
            let mut row = emb.embedding(*f).unwrap().to_vec();
            scaler.transform_row(&mut row);
            model.predict(&row)
        })
        .collect();
    let truth: Vec<usize> = new_tuples.iter().map(|(_, c)| *c).collect();
    let majority = {
        let mut counts = vec![0usize; ds.class_count()];
        for &c in &truth {
            counts[c] += 1;
        }
        *counts.iter().max().unwrap() as f64 / truth.len() as f64
    };
    println!(
        "Accuracy on the newly inserted molecules: {:.1}% (majority {:.1}%)",
        accuracy(&preds, &truth) * 100.0,
        majority * 100.0
    );
}
