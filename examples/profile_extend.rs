//! Profile the FoRWaRD dynamic-extension hot path and its
//! walk-distribution cache (mirrors `benches/dynamic_extend.rs`).
//!
//! Run with `cargo run --release --example profile_extend`. Environment
//! knobs: `EXACT_LIMIT` (exact-KD support cap, default 128) and `MC_PAIRS`
//! (Monte-Carlo pair budget, default 24).

use reldb::cascade_delete;
use std::time::Instant;

fn main() {
    let params = datasets::DatasetParams {
        scale: 0.08,
        ..datasets::DatasetParams::default()
    };
    for name in ["hepatitis", "genes"] {
        let ds = datasets::by_name(name, &params).expect("dataset");
        let mut db = ds.db.clone();
        let victim = ds.labels[0].0;
        let journal = cascade_delete(&mut db, victim, true).expect("cascade");
        // Mirror benches/dynamic_extend.rs: ExperimentConfig::quick() fwd
        // settings with epochs = 4.
        let cfg = stembed_core::ForwardConfig {
            dim: 32,
            max_walk_len: 2,
            nsamples: 25,
            epochs: 4,
            batch_size: 1,
            learning_rate: 0.1,
            nnew_samples: 12,
            kd: stembed_core::kd::KdOptions {
                exact_limit: std::env::var("EXACT_LIMIT")
                    .ok()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(128),
                mc_pairs: std::env::var("MC_PAIRS")
                    .ok()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(24),
                max_attempts: 6,
            },
            ..stembed_core::ForwardConfig::small()
        };
        let emb = stembed_core::ForwardEmbedding::train(&db, ds.prediction_rel, &cfg, 3)
            .expect("training");
        let restored = reldb::restore_journal(&mut db, &journal).expect("restore");
        println!(
            "{name}: targets={} embedded={} restored={} nnew={}",
            emb.targets().len(),
            emb.len(),
            restored.len(),
            cfg.nnew_samples
        );
        let mine: Vec<_> = restored
            .iter()
            .copied()
            .filter(|f| f.rel == ds.prediction_rel)
            .collect();
        for round in 0..3 {
            let mut e = emb.clone();
            let t = Instant::now();
            e.extend_batch(&db, &mine, 9).unwrap();
            let dt = t.elapsed().as_secs_f64() * 1e3;
            let s = e.dist_cache().stats();
            println!(
                "  round {round}: {dt:.2} ms  cache hits={} misses={} inval={} entries={}",
                s.hits,
                s.misses,
                s.invalidations,
                e.dist_cache().len()
            );
        }
    }
}
