//! Profile the dynamic-extension hot paths: FoRWaRD's walk-distribution
//! cache and Node2Vec's incrementally-maintained negative-sampling table
//! (mirrors `benches/dynamic_extend.rs`).
//!
//! Runs the paper's one-by-one insertion protocol (§VI-E): several
//! prediction tuples are cascade-deleted, the embeddings train on the
//! remainder, and the tuples come back round by round.
//!
//! * **FoRWaRD** extends on the **persistent** cache, whose journal-replay
//!   invalidation keeps FK-unreachable entries warm across rounds (deletes
//!   included, via the journalled fact payloads). Per round it prints the
//!   wall-clock (restore + extends, via the same `repro::one_by_one_round`
//!   the bench measures) plus the cache's hit/miss/evicted deltas and the
//!   prefix tier's reuse share (what fraction of frontier lookups resumed
//!   a cached parent instead of starting a fresh BFS); a throwaway-cache
//!   pass of the same rounds prints last for comparison.
//! * **Node2Vec** extends with the bucketed negative table: per round it
//!   prints how many nodes the continuation walks dirtied and how many
//!   sampler buckets were rebuilt out of the total — the sub-linearity
//!   evidence at a glance.
//!
//! Run with `cargo run --release --example profile_extend`. Environment
//! knobs: `PROFILE_SCALE` (dataset scale, default 0.08), `PROFILE_ASSERT`
//! (when `1`, fail on cache/sampler stat regressions — the CI smoke mode),
//! `EXACT_LIMIT` (exact-KD support cap, default 128) and `MC_PAIRS`
//! (Monte-Carlo pair budget, default 24).

use reldb::{cascade_delete, restore_journal};
use repro::one_by_one_round;
use std::time::Instant;
use stembed_core::TupleEmbedder;

const ROUNDS: usize = 4;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let assert_mode = std::env::var("PROFILE_ASSERT").is_ok_and(|v| v == "1");
    let params = datasets::DatasetParams {
        scale: env_f64("PROFILE_SCALE", 0.08),
        ..datasets::DatasetParams::default()
    };
    for name in ["hepatitis", "genes", "mutagenesis", "mondial"] {
        let ds = datasets::by_name(name, &params).expect("dataset");
        let rounds = ROUNDS.min(ds.labels.len().saturating_sub(1));
        let mut db = ds.db.clone();
        let mut journals = Vec::with_capacity(rounds);
        for i in 0..rounds {
            journals.push(cascade_delete(&mut db, ds.labels[i].0, true).expect("cascade"));
        }
        // Mirror benches/dynamic_extend.rs: ExperimentConfig::quick() fwd
        // settings with epochs = 4.
        let cfg = stembed_core::ForwardConfig {
            dim: 32,
            max_walk_len: 2,
            nsamples: 25,
            epochs: 4,
            batch_size: 1,
            learning_rate: 0.1,
            nnew_samples: 12,
            kd: stembed_core::kd::KdOptions {
                exact_limit: env_usize("EXACT_LIMIT", 128),
                mc_pairs: env_usize("MC_PAIRS", 24),
                max_attempts: 6,
            },
            ..stembed_core::ForwardConfig::small()
        };
        let emb = stembed_core::ForwardEmbedding::train(&db, ds.prediction_rel, &cfg, 3)
            .expect("training");
        println!(
            "{name}: targets={} embedded={} rounds={rounds} nnew={}",
            emb.targets().len(),
            emb.len(),
            cfg.nnew_samples
        );

        for warm in [true, false] {
            let mut db = db.clone();
            let mut e = emb.clone();
            let mut prev = e.dist_cache().stats();
            let mut total = 0.0;
            for (round, journal) in journals.iter().rev().enumerate() {
                let t = Instant::now();
                one_by_one_round(
                    &mut e,
                    &mut db,
                    ds.prediction_rel,
                    journal,
                    9,
                    round as u64,
                    warm,
                );
                let dt = t.elapsed().as_secs_f64() * 1e3;
                total += dt;
                let s = e.dist_cache().stats();
                if warm {
                    let round_stats = stembed_core::DistCacheStats {
                        hits: s.hits - prev.hits,
                        misses: s.misses - prev.misses,
                        evicted: s.evicted - prev.evicted,
                        prefix_hits: s.prefix_hits - prev.prefix_hits,
                        prefix_misses: s.prefix_misses - prev.prefix_misses,
                        ..Default::default()
                    };
                    println!(
                        "  round {round}: {dt:6.2} ms  hits={:<5} misses={:<5} \
                         evicted={:<4} hit-rate={:4.0}%  prefix-reuse={:4.0}%  entries={}",
                        round_stats.hits,
                        round_stats.misses,
                        round_stats.evicted,
                        100.0 * round_stats.hit_rate(),
                        100.0 * round_stats.prefix_hit_rate(),
                        e.dist_cache().len()
                    );
                }
                prev = s;
            }
            println!(
                "  {} total: {total:.2} ms",
                if warm {
                    "warm (persistent cache)"
                } else {
                    "cold (throwaway caches)"
                }
            );
            if warm && assert_mode {
                let s = e.dist_cache().stats();
                assert!(s.hits > 0, "{name}: warm cache never hit");
                assert_eq!(
                    s.invalidations, 0,
                    "{name}: the restore-only protocol forced a full clear"
                );
                assert!(s.replays > 0, "{name}: no journal replay happened");
                assert!(
                    s.prefix_hits + s.prefix_misses > 0,
                    "{name}: no frontier was ever assembled through the prefix tier"
                );
                // Reuse is a property of the plan's shape: schemes that
                // share step prefixes must resume each other's frontiers.
                // (Some schemas — hepatitis at walk length 2 — branch at
                // the root only, so there is legitimately nothing to
                // share and the plan collapses to the flat scheme list.)
                let plan = e.scheme_plan();
                if plan.shared_step_count() < plan.flat_step_count() {
                    assert!(
                        s.prefix_hits > 0,
                        "{name}: the plan factors {} flat steps into {} shared ones, \
                         yet no frontier was ever resumed",
                        plan.flat_step_count(),
                        plan.shared_step_count()
                    );
                }
            }
        }

        // Node2Vec: the same rounds on the incrementally-maintained
        // negative-sampling table (sub-linear: only dirty buckets rebuilt),
        // once under insertion-order node ids and once under the
        // BFS-localized layout — the second pass shows the continuation
        // walks' dirty sets clustering into fewer sampler buckets. Per
        // round the kernel share (SGNS time / extend wall-clock, from
        // `last_extend_timing`) is printed alongside.
        let mut cfg = repro::ExperimentConfig::quick();
        cfg.n2v.epochs = 2;
        let mut rebuilt_by_pass = [0u64; 2];
        for localized in [false, true] {
            let label = if localized { "n2v/bfs" } else { "n2v/ins" };
            let mut db_n = db.clone();
            let mut n2v = if localized {
                stembed_core::Node2VecEmbedder::train_localized(
                    &db_n,
                    ds.prediction_rel,
                    &cfg.n2v,
                    3,
                )
            } else {
                stembed_core::Node2VecEmbedder::train(&db_n, &cfg.n2v, 3)
            };
            let mut prev = n2v.model().negative_stats();
            let mut total = 0.0;
            for (round, journal) in journals.iter().rev().enumerate() {
                let restored = restore_journal(&mut db_n, journal).expect("restore");
                let t = Instant::now();
                n2v.extend(&db_n, &restored, 9 + round as u64)
                    .expect("extend");
                let dt = t.elapsed().as_secs_f64() * 1e3;
                total += dt;
                let s = n2v.model().negative_stats();
                let timing = n2v.model().last_extend_timing();
                println!(
                    "  {label} round {round}: {dt:6.2} ms  dirty-nodes={:<5} \
                     buckets-rebuilt={}/{} (of {} nodes)  kernel-share={:3.0}%",
                    s.dirty_nodes - prev.dirty_nodes,
                    s.buckets_rebuilt - prev.buckets_rebuilt,
                    n2v.model().negative_bucket_count(),
                    n2v.model().node_count(),
                    100.0 * timing.kernel_share(),
                );
                prev = s;
            }
            let s = n2v.model().negative_stats();
            rebuilt_by_pass[localized as usize] = s.buckets_rebuilt;
            println!("  {label} total: {total:.2} ms");
            if assert_mode {
                // The regression this guards: the extend path silently going
                // back to full O(n) table rebuilds. (A bucket-count bound is
                // deliberately NOT asserted — at smoke scale the dirty nodes
                // scatter across the whole id space and legitimately touch
                // every bucket; the sub-linear win there is skipping the
                // per-node re-smoothing, which `updates`/`rebuilds` witness.)
                assert_eq!(s.rebuilds, 1, "{name}: only the static phase rebuilds");
                assert_eq!(
                    s.updates,
                    journals.len() as u64,
                    "{name}: every round must catch up incrementally"
                );
                assert!(s.dirty_nodes > 0, "{name}: updates recorded no dirty nodes");
            }
        }
        println!(
            "  n2v buckets-rebuilt over all rounds: insertion-order={} bfs-localized={}",
            rebuilt_by_pass[0], rebuilt_by_pass[1]
        );

        // WAL durability (`repro::durable`): the same restore+extend
        // rounds, once bare and once through the WAL-backed pipeline,
        // with per-round WAL bytes, fsync count, and committed snapshot
        // size. The delta of the two medians is the log's overhead on the
        // dynamic protocol (`DURABILITY.md` budget: ≤ 10% at the default
        // fsync batching). Snapshots are taken per round but *outside*
        // the timed window — their cadence is a policy choice, the
        // per-mutation logging is not.
        // `PROFILE_REPS` interleaved repetitions of each pass (fresh
        // clones and a fresh WAL directory per rep) keep the sub-ms
        // rounds out of the noise floor; the medians pool all reps.
        // Rep 0 is the *reporting* rep: it snapshots after every round
        // to print WAL/snapshot stats, and is excluded from the durable
        // medians — serializing megabytes between rounds trashes the
        // caches the next round would have kept warm, which would
        // charge the per-mutation log for a snapshot-cadence policy
        // choice. The timed reps run log-only, like the bare pass.
        let reps = env_usize("PROFILE_REPS", 3).max(2);
        let fwd0 = stembed_core::ForwardEmbedder::from(emb.clone());
        let n2v0 = stembed_core::Node2VecEmbedder::train(&db, &cfg.n2v, 3);
        let wal_dir = std::env::temp_dir()
            .join(format!("stembed-profile-wal-{}-{name}", std::process::id()))
            .to_string_lossy()
            .into_owned();
        // Per-round sample vectors: rounds differ in magnitude (journal
        // sizes differ), so each round gets its own median across reps
        // and the protocol cost is the sum of those medians.
        let mut bare_ms = vec![Vec::with_capacity(reps); journals.len()];
        let mut durable_ms = vec![Vec::with_capacity(reps); journals.len()];
        for rep in 0..reps {
            // Open the pipeline *before* the bare rounds: `create`
            // commits the initial snapshot (megabytes of serialization),
            // and doing it here means that cache pollution is absorbed
            // by the bare pass instead of landing right before the
            // durable rounds it would otherwise penalize.
            let _ = std::fs::remove_dir_all(&wal_dir);
            let vfs: std::sync::Arc<dyn stembed_wal::Vfs> =
                std::sync::Arc::new(stembed_wal::StdVfs);
            let mut pipe = repro::durable::DurablePipeline::create(
                vfs,
                &wal_dir,
                db.clone(),
                fwd0.clone(),
                n2v0.clone(),
                repro::durable::DEFAULT_SYNC_EVERY,
            )
            .expect("durable create");

            let mut db_b = db.clone();
            let mut fwd = fwd0.clone();
            let mut n2v = n2v0.clone();
            for (round, journal) in journals.iter().rev().enumerate() {
                let t = Instant::now();
                let restored = restore_journal(&mut db_b, journal).expect("restore");
                fwd.extend(&db_b, &restored, 1000 + round as u64)
                    .expect("fwd extend");
                n2v.extend(&db_b, &restored, 1000 + round as u64)
                    .expect("n2v extend");
                if rep > 0 {
                    bare_ms[round].push(t.elapsed().as_secs_f64() * 1e3);
                }
            }

            let mut prev_wal = pipe.wal_stats();
            for (round, journal) in journals.iter().rev().enumerate() {
                let t = Instant::now();
                let restored = pipe
                    .mutate(|db| restore_journal(db, journal))
                    .expect("restore");
                pipe.extend(&restored, 1000 + round as u64).expect("extend");
                let dt = t.elapsed().as_secs_f64() * 1e3;
                if rep == 0 {
                    let lsn = pipe.snapshot().expect("snapshot");
                    let snap_bytes = pipe
                        .latest_snapshot_bytes()
                        .expect("snapshot size")
                        .unwrap_or(0);
                    let s = pipe.wal_stats();
                    println!(
                        "  wal round {round}: {dt:6.2} ms  wal-bytes={:<6} fsyncs={}  \
                         snapshot={snap_bytes} B (lsn {lsn})",
                        s.bytes - prev_wal.bytes,
                        s.fsyncs - prev_wal.fsyncs,
                    );
                    prev_wal = s;
                } else {
                    durable_ms[round].push(dt);
                }
            }
            if assert_mode && rep == 0 {
                let s = pipe.wal_stats();
                assert!(
                    s.frames > 0 && s.bytes > 0 && s.fsyncs > 0,
                    "{name}: the durable pass recorded nothing"
                );
            }
        }
        let mb: f64 = bare_ms.iter().map(|r| median(r)).sum();
        let md: f64 = durable_ms.iter().map(|r| median(r)).sum();
        println!(
            "  wal overhead ({} timed reps): bare {mb:.2} ms vs durable {md:.2} ms \
             per protocol (sum of per-round medians, {:+.1}%)",
            reps - 1,
            100.0 * (md - mb) / mb
        );
        let _ = std::fs::remove_dir_all(&wal_dir);
    }
}

/// Median of a non-empty slice (mean of the middle two for even lengths).
fn median(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}
