//! Profile the dynamic-extension hot paths: FoRWaRD's walk-distribution
//! cache and Node2Vec's incrementally-maintained negative-sampling table
//! (mirrors `benches/dynamic_extend.rs`).
//!
//! Runs the paper's one-by-one insertion protocol (§VI-E): several
//! prediction tuples are cascade-deleted, the embeddings train on the
//! remainder, and the tuples come back round by round.
//!
//! * **FoRWaRD** extends on the **persistent** cache, whose journal-replay
//!   invalidation keeps FK-unreachable entries warm across rounds (deletes
//!   included, via the journalled fact payloads). Per round it prints the
//!   wall-clock (restore + extends, via the same `repro::one_by_one_round`
//!   the bench measures) plus the cache's hit/miss/evicted deltas; a
//!   throwaway-cache pass of the same rounds prints last for comparison.
//! * **Node2Vec** extends with the bucketed negative table: per round it
//!   prints how many nodes the continuation walks dirtied and how many
//!   sampler buckets were rebuilt out of the total — the sub-linearity
//!   evidence at a glance.
//!
//! Run with `cargo run --release --example profile_extend`. Environment
//! knobs: `PROFILE_SCALE` (dataset scale, default 0.08), `PROFILE_ASSERT`
//! (when `1`, fail on cache/sampler stat regressions — the CI smoke mode),
//! `EXACT_LIMIT` (exact-KD support cap, default 128) and `MC_PAIRS`
//! (Monte-Carlo pair budget, default 24).

use reldb::{cascade_delete, restore_journal};
use repro::one_by_one_round;
use std::time::Instant;
use stembed_core::TupleEmbedder;

const ROUNDS: usize = 4;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let assert_mode = std::env::var("PROFILE_ASSERT").is_ok_and(|v| v == "1");
    let params = datasets::DatasetParams {
        scale: env_f64("PROFILE_SCALE", 0.08),
        ..datasets::DatasetParams::default()
    };
    for name in ["hepatitis", "genes", "mutagenesis", "mondial"] {
        let ds = datasets::by_name(name, &params).expect("dataset");
        let rounds = ROUNDS.min(ds.labels.len().saturating_sub(1));
        let mut db = ds.db.clone();
        let mut journals = Vec::with_capacity(rounds);
        for i in 0..rounds {
            journals.push(cascade_delete(&mut db, ds.labels[i].0, true).expect("cascade"));
        }
        // Mirror benches/dynamic_extend.rs: ExperimentConfig::quick() fwd
        // settings with epochs = 4.
        let cfg = stembed_core::ForwardConfig {
            dim: 32,
            max_walk_len: 2,
            nsamples: 25,
            epochs: 4,
            batch_size: 1,
            learning_rate: 0.1,
            nnew_samples: 12,
            kd: stembed_core::kd::KdOptions {
                exact_limit: env_usize("EXACT_LIMIT", 128),
                mc_pairs: env_usize("MC_PAIRS", 24),
                max_attempts: 6,
            },
            ..stembed_core::ForwardConfig::small()
        };
        let emb = stembed_core::ForwardEmbedding::train(&db, ds.prediction_rel, &cfg, 3)
            .expect("training");
        println!(
            "{name}: targets={} embedded={} rounds={rounds} nnew={}",
            emb.targets().len(),
            emb.len(),
            cfg.nnew_samples
        );

        for warm in [true, false] {
            let mut db = db.clone();
            let mut e = emb.clone();
            let mut prev = e.dist_cache().stats();
            let mut total = 0.0;
            for (round, journal) in journals.iter().rev().enumerate() {
                let t = Instant::now();
                one_by_one_round(
                    &mut e,
                    &mut db,
                    ds.prediction_rel,
                    journal,
                    9,
                    round as u64,
                    warm,
                );
                let dt = t.elapsed().as_secs_f64() * 1e3;
                total += dt;
                let s = e.dist_cache().stats();
                if warm {
                    let round_stats = stembed_core::DistCacheStats {
                        hits: s.hits - prev.hits,
                        misses: s.misses - prev.misses,
                        evicted: s.evicted - prev.evicted,
                        ..Default::default()
                    };
                    println!(
                        "  round {round}: {dt:6.2} ms  hits={:<5} misses={:<5} \
                         evicted={:<4} hit-rate={:4.0}%  entries={}",
                        round_stats.hits,
                        round_stats.misses,
                        round_stats.evicted,
                        100.0 * round_stats.hit_rate(),
                        e.dist_cache().len()
                    );
                }
                prev = s;
            }
            println!(
                "  {} total: {total:.2} ms",
                if warm {
                    "warm (persistent cache)"
                } else {
                    "cold (throwaway caches)"
                }
            );
            if warm && assert_mode {
                let s = e.dist_cache().stats();
                assert!(s.hits > 0, "{name}: warm cache never hit");
                assert_eq!(
                    s.invalidations, 0,
                    "{name}: the restore-only protocol forced a full clear"
                );
                assert!(s.replays > 0, "{name}: no journal replay happened");
            }
        }

        // Node2Vec: the same rounds on the incrementally-maintained
        // negative-sampling table (sub-linear: only dirty buckets rebuilt),
        // once under insertion-order node ids and once under the
        // BFS-localized layout — the second pass shows the continuation
        // walks' dirty sets clustering into fewer sampler buckets. Per
        // round the kernel share (SGNS time / extend wall-clock, from
        // `last_extend_timing`) is printed alongside.
        let mut cfg = repro::ExperimentConfig::quick();
        cfg.n2v.epochs = 2;
        let mut rebuilt_by_pass = [0u64; 2];
        for localized in [false, true] {
            let label = if localized { "n2v/bfs" } else { "n2v/ins" };
            let mut db_n = db.clone();
            let mut n2v = if localized {
                stembed_core::Node2VecEmbedder::train_localized(
                    &db_n,
                    ds.prediction_rel,
                    &cfg.n2v,
                    3,
                )
            } else {
                stembed_core::Node2VecEmbedder::train(&db_n, &cfg.n2v, 3)
            };
            let mut prev = n2v.model().negative_stats();
            let mut total = 0.0;
            for (round, journal) in journals.iter().rev().enumerate() {
                let restored = restore_journal(&mut db_n, journal).expect("restore");
                let t = Instant::now();
                n2v.extend(&db_n, &restored, 9 + round as u64)
                    .expect("extend");
                let dt = t.elapsed().as_secs_f64() * 1e3;
                total += dt;
                let s = n2v.model().negative_stats();
                let timing = n2v.model().last_extend_timing();
                println!(
                    "  {label} round {round}: {dt:6.2} ms  dirty-nodes={:<5} \
                     buckets-rebuilt={}/{} (of {} nodes)  kernel-share={:3.0}%",
                    s.dirty_nodes - prev.dirty_nodes,
                    s.buckets_rebuilt - prev.buckets_rebuilt,
                    n2v.model().negative_bucket_count(),
                    n2v.model().node_count(),
                    100.0 * timing.kernel_share(),
                );
                prev = s;
            }
            let s = n2v.model().negative_stats();
            rebuilt_by_pass[localized as usize] = s.buckets_rebuilt;
            println!("  {label} total: {total:.2} ms");
            if assert_mode {
                // The regression this guards: the extend path silently going
                // back to full O(n) table rebuilds. (A bucket-count bound is
                // deliberately NOT asserted — at smoke scale the dirty nodes
                // scatter across the whole id space and legitimately touch
                // every bucket; the sub-linear win there is skipping the
                // per-node re-smoothing, which `updates`/`rebuilds` witness.)
                assert_eq!(s.rebuilds, 1, "{name}: only the static phase rebuilds");
                assert_eq!(
                    s.updates,
                    journals.len() as u64,
                    "{name}: every round must catch up incrementally"
                );
                assert!(s.dirty_nodes > 0, "{name}: updates recorded no dirty nodes");
            }
        }
        println!(
            "  n2v buckets-rebuilt over all rounds: insertion-order={} bfs-localized={}",
            rebuilt_by_pass[0], rebuilt_by_pass[1]
        );
    }
}
