//! Profile the FoRWaRD dynamic-extension hot path and its
//! walk-distribution cache (mirrors `benches/dynamic_extend.rs`).
//!
//! Runs the paper's one-by-one insertion protocol (§VI-E): several
//! prediction tuples are cascade-deleted, the embedding trains on the
//! remainder, and the tuples come back round by round — extending after
//! every round on the **persistent** cache, whose journal-replay
//! invalidation keeps FK-unreachable entries warm across rounds. Per
//! round it prints the wall-clock (restore + extends, via the same
//! `repro::one_by_one_round` the bench measures) plus the cache's
//! hit/miss/evicted deltas, so a warm-rate regression is visible at a
//! glance; a throwaway-cache pass of the same rounds prints last for
//! comparison.
//!
//! Run with `cargo run --release --example profile_extend`. Environment
//! knobs: `EXACT_LIMIT` (exact-KD support cap, default 128) and `MC_PAIRS`
//! (Monte-Carlo pair budget, default 24).

use reldb::cascade_delete;
use repro::one_by_one_round;
use std::time::Instant;

const ROUNDS: usize = 4;

fn main() {
    let params = datasets::DatasetParams {
        scale: 0.08,
        ..datasets::DatasetParams::default()
    };
    for name in ["hepatitis", "genes", "mutagenesis", "mondial"] {
        let ds = datasets::by_name(name, &params).expect("dataset");
        let mut db = ds.db.clone();
        let mut journals = Vec::with_capacity(ROUNDS);
        for i in 0..ROUNDS {
            journals.push(cascade_delete(&mut db, ds.labels[i].0, true).expect("cascade"));
        }
        // Mirror benches/dynamic_extend.rs: ExperimentConfig::quick() fwd
        // settings with epochs = 4.
        let cfg = stembed_core::ForwardConfig {
            dim: 32,
            max_walk_len: 2,
            nsamples: 25,
            epochs: 4,
            batch_size: 1,
            learning_rate: 0.1,
            nnew_samples: 12,
            kd: stembed_core::kd::KdOptions {
                exact_limit: std::env::var("EXACT_LIMIT")
                    .ok()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(128),
                mc_pairs: std::env::var("MC_PAIRS")
                    .ok()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(24),
                max_attempts: 6,
            },
            ..stembed_core::ForwardConfig::small()
        };
        let emb = stembed_core::ForwardEmbedding::train(&db, ds.prediction_rel, &cfg, 3)
            .expect("training");
        println!(
            "{name}: targets={} embedded={} rounds={ROUNDS} nnew={}",
            emb.targets().len(),
            emb.len(),
            cfg.nnew_samples
        );

        for warm in [true, false] {
            let mut db = db.clone();
            let mut e = emb.clone();
            let mut prev = e.dist_cache().stats();
            let mut total = 0.0;
            for (round, journal) in journals.iter().rev().enumerate() {
                let t = Instant::now();
                one_by_one_round(
                    &mut e,
                    &mut db,
                    ds.prediction_rel,
                    journal,
                    9,
                    round as u64,
                    warm,
                );
                let dt = t.elapsed().as_secs_f64() * 1e3;
                total += dt;
                let s = e.dist_cache().stats();
                if warm {
                    let round_stats = stembed_core::DistCacheStats {
                        hits: s.hits - prev.hits,
                        misses: s.misses - prev.misses,
                        evicted: s.evicted - prev.evicted,
                        ..Default::default()
                    };
                    println!(
                        "  round {round}: {dt:6.2} ms  hits={:<5} misses={:<5} \
                         evicted={:<4} hit-rate={:4.0}%  entries={}",
                        round_stats.hits,
                        round_stats.misses,
                        round_stats.evicted,
                        100.0 * round_stats.hit_rate(),
                        e.dist_cache().len()
                    );
                }
                prev = s;
            }
            println!(
                "  {} total: {total:.2} ms",
                if warm {
                    "warm (persistent cache)"
                } else {
                    "cold (throwaway caches)"
                }
            );
        }
    }
}
