//! Column prediction over a benchmark database — the paper's downstream
//! task (§VI): embed the tuples, train an SVM on the vectors, predict a
//! hidden column, compare both embedding methods against the baselines.
//!
//! Run with: `cargo run --release --example column_prediction`

use stembed::core::{ForwardConfig, ForwardEmbedder, Node2VecEmbedder, TupleEmbedder};
use stembed::datasets::{self, DatasetParams};
use stembed::ml::{
    accuracy, majority_class, stratified_kfold, OneVsRest, RbfSvm, StandardScaler, SvmParams,
};
use stembed::node2vec::Node2VecConfig;

fn main() {
    // A small Hepatitis-like database: predict the hepatitis type of a
    // patient from examinations stored in *other* relations.
    let params = DatasetParams {
        scale: 0.15,
        ..DatasetParams::default()
    };
    let ds = datasets::hepatitis::generate(&params);
    println!(
        "Hepatitis-like database: {} tuples over {} relations; predicting {} classes for {} patients",
        ds.db.total_facts(),
        ds.db.schema().relation_count(),
        ds.class_count(),
        ds.sample_count()
    );
    let labels: Vec<usize> = ds.labels.iter().map(|(_, c)| *c).collect();
    let (_, majority) = majority_class(&labels);
    println!("majority baseline: {:.1}%\n", majority * 100.0);

    // Train both embedders (they never see the predicted column — it is
    // physically null in the database).
    let fwd = ForwardEmbedder::train(
        &ds.db,
        ds.prediction_rel,
        &ForwardConfig {
            dim: 24,
            epochs: 12,
            ..ForwardConfig::small()
        },
        7,
    )
    .expect("FoRWaRD training");
    let n2v = Node2VecEmbedder::train(&ds.db, &Node2VecConfig::small(), 7);

    for (name, features) in [
        ("FoRWaRD", collect(&fwd, &ds)),
        ("Node2Vec", collect(&n2v, &ds)),
    ] {
        let (_, x) = StandardScaler::fit_transform(&features);
        let folds = stratified_kfold(&labels, 5, 3);
        let mut scores = Vec::new();
        for test in &folds {
            let train: Vec<usize> = (0..labels.len()).filter(|i| !test.contains(i)).collect();
            let xt: Vec<Vec<f64>> = train.iter().map(|&i| x[i].clone()).collect();
            let yt: Vec<usize> = train.iter().map(|&i| labels[i]).collect();
            let model = OneVsRest::fit(&xt, &yt, ds.class_count(), || {
                RbfSvm::new(SvmParams {
                    c: 10.0,
                    ..SvmParams::default()
                })
            });
            let preds: Vec<usize> = test.iter().map(|&i| model.predict(&x[i])).collect();
            let truth: Vec<usize> = test.iter().map(|&i| labels[i]).collect();
            scores.push(accuracy(&preds, &truth));
        }
        println!(
            "{name:<9} 5-fold accuracy: {:.1}% ± {:.1}",
            linalg::mean(&scores) * 100.0,
            linalg::std_dev(&scores) * 100.0
        );
    }
}

fn collect(emb: &dyn TupleEmbedder, ds: &stembed::datasets::Dataset) -> Vec<Vec<f64>> {
    ds.labels
        .iter()
        .map(|(f, _)| {
            emb.embedding(*f)
                .expect("labelled facts are embedded")
                .to_vec()
        })
        .collect()
}
