//! A focused audit of the paper's central guarantee across a *sequence* of
//! dynamic events: repeated insert/extend rounds must never move any vector
//! that existed before the round, for either method, and embeddings must
//! remain usable in between.

use std::collections::HashMap;
use stembed::core::{ForwardConfig, ForwardEmbedder, Node2VecEmbedder, TupleEmbedder};
use stembed::datasets::{self, DatasetParams};
use stembed::node2vec::Node2VecConfig;
use stembed::reldb::{cascade_delete, restore_journal, DeletionJournal, FactId};

/// Run four rounds of {re-insert a tuple group, extend} and after each
/// round check bit-stability of everything that predated the round.
fn audit(mk: impl FnOnce(&stembed::reldb::Database) -> Box<dyn TupleEmbedder>) {
    let ds = datasets::hepatitis::generate(&DatasetParams::tiny(21));
    let mut db = ds.db.clone();

    // Remove four patients up front; they will arrive over four rounds.
    let victims: Vec<FactId> = ds.labels.iter().take(4).map(|(f, _)| *f).collect();
    let mut journals: Vec<(FactId, DeletionJournal)> = Vec::new();
    for &v in &victims {
        journals.push((v, cascade_delete(&mut db, v, true).expect("cascade")));
    }
    let mut emb = mk(&db);

    // Everything embedded so far, with its vector.
    let mut ledger: HashMap<FactId, Vec<f64>> = ds
        .labels
        .iter()
        .map(|(f, _)| *f)
        .filter(|f| !victims.contains(f))
        .filter_map(|f| emb.embedding(f).map(|v| (f, v.to_vec())))
        .collect();

    for (round, (newcomer, journal)) in journals.iter().enumerate().rev() {
        let restored = restore_journal(&mut db, journal).expect("restore");
        emb.extend(&db, &restored, 100 + round as u64)
            .expect("extend");
        // Stability of the whole ledger, including tuples added in earlier
        // rounds of this very loop.
        for (f, vec) in &ledger {
            assert_eq!(
                emb.embedding(*f).expect("still embedded"),
                vec.as_slice(),
                "round {round}: {f} moved"
            );
        }
        // The newly arrived prediction tuple joins the ledger.
        let v = emb
            .embedding(*newcomer)
            .expect("newcomer embedded")
            .to_vec();
        assert!(v.iter().all(|x| x.is_finite()));
        ledger.insert(*newcomer, v);
    }
    assert_eq!(ledger.len(), ds.sample_count());
}

#[test]
fn forward_is_stable_across_many_rounds() {
    let cfg = ForwardConfig {
        dim: 10,
        epochs: 5,
        nsamples: 12,
        ..ForwardConfig::small()
    };
    audit(move |db| {
        let rel = db.schema().relation_id("DISPAT").expect("DISPAT");
        Box::new(ForwardEmbedder::train(db, rel, &cfg, 9).expect("train"))
    });
}

#[test]
fn node2vec_is_stable_across_many_rounds() {
    let cfg = Node2VecConfig {
        dim: 10,
        epochs: 2,
        walks_per_node: 4,
        ..Node2VecConfig::small()
    };
    audit(move |db| Box::new(Node2VecEmbedder::train(db, &cfg, 9)));
}
