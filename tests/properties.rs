//! Property-based tests over the core invariants, spanning crates.

use proptest::prelude::*;
use stembed::linalg::{pinv, Matrix};
use stembed::reldb::{
    cascade_delete, restore_journal, Database, SchemaBuilder, Value, ValueType,
};

/// Build a two-relation parent/child database from generated data. `links`
/// maps each child to a parent index.
fn build_db(parent_count: usize, links: &[usize]) -> (Database, Vec<stembed::reldb::FactId>) {
    let mut b = SchemaBuilder::new();
    b.relation("P")
        .attr("pid", ValueType::Int)
        .attr("payload", ValueType::Int)
        .key(&["pid"]);
    b.relation("C")
        .attr("cid", ValueType::Int)
        .attr("parent", ValueType::Int)
        .key(&["cid"]);
    b.foreign_key("C", &["parent"], "P");
    let mut db = Database::new(b.build().unwrap());
    let mut parents = Vec::new();
    for i in 0..parent_count {
        parents.push(
            db.insert_into("P", vec![Value::Int(i as i64), Value::Int(i as i64 * 7)])
                .unwrap(),
        );
    }
    for (c, &p) in links.iter().enumerate() {
        db.insert_into(
            "C",
            vec![Value::Int(c as i64), Value::Int((p % parent_count) as i64)],
        )
        .unwrap();
    }
    (db, parents)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cascade deletion + journal restore is the identity on the database,
    /// regardless of reference topology and deletion target.
    #[test]
    fn cascade_then_restore_is_identity(
        parent_count in 1usize..8,
        links in prop::collection::vec(0usize..8, 0..20),
        victim in 0usize..8,
        orphans in any::<bool>(),
    ) {
        let (mut db, parents) = build_db(parent_count, &links);
        let before = stembed::reldb::text::to_text(&db);
        let victim = parents[victim % parent_count];
        let journal = cascade_delete(&mut db, victim, orphans).unwrap();
        // All constraints hold in the intermediate state.
        db.check_all_fks().unwrap();
        prop_assert!(db.fact(victim).is_none());
        restore_journal(&mut db, &journal).unwrap();
        prop_assert_eq!(stembed::reldb::text::to_text(&db), before);
    }

    /// After any cascade deletion the database satisfies every FK.
    #[test]
    fn cascade_never_dangles(
        parent_count in 1usize..6,
        links in prop::collection::vec(0usize..6, 0..25),
        victim in 0usize..6,
    ) {
        let (mut db, parents) = build_db(parent_count, &links);
        cascade_delete(&mut db, parents[victim % parent_count], true).unwrap();
        db.check_all_fks().unwrap();
    }

    /// Penrose condition 1 for the pseudoinverse on arbitrary matrices:
    /// A·A⁺·A = A.
    #[test]
    fn pinv_penrose_one(
        rows in 1usize..6,
        cols in 1usize..6,
        data in prop::collection::vec(-10.0f64..10.0, 36),
    ) {
        let a = Matrix::from_vec(rows, cols, data[..rows * cols].to_vec());
        let ap = pinv(&a).unwrap();
        let back = a.matmul(&ap).unwrap().matmul(&a).unwrap();
        for (x, y) in back.as_slice().iter().zip(a.as_slice()) {
            prop_assert!((x - y).abs() < 1e-6, "A A+ A != A: {x} vs {y}");
        }
    }

    /// Value parsing round-trips through Display for non-null values.
    #[test]
    fn value_display_parse_roundtrip(i in any::<i64>(), t in "[a-z]{1,12}") {
        let v = Value::Int(i);
        prop_assert_eq!(
            Value::parse(&v.to_string(), ValueType::Int).unwrap(), v
        );
        let v = Value::Text(t);
        let parsed = Value::parse(&v.to_string(), ValueType::Text).unwrap();
        prop_assert_eq!(parsed, v);
    }

    /// Random walks over any generated graph only traverse real edges, and
    /// node2vec corpora cover exactly the requested starts.
    #[test]
    fn walks_follow_edges(
        edges in prop::collection::vec((0u32..12, 0u32..12), 1..40),
        seed in any::<u64>(),
    ) {
        use stembed::dbgraph::{Graph, WalkConfig, Walker};
        let mut g = Graph::new();
        for _ in 0..12 {
            g.add_node();
        }
        for (a, b) in edges {
            if a != b {
                g.add_edge(stembed::dbgraph::NodeId(a), stembed::dbgraph::NodeId(b));
            }
        }
        let cfg = WalkConfig { walks_per_node: 2, walk_length: 6, p: 0.5, q: 2.0 };
        let corpus = Walker::new(&g, cfg, seed).corpus();
        for walk in &corpus.walks {
            for pair in walk.windows(2) {
                prop_assert!(g.has_edge(pair[0], pair[1]));
            }
        }
    }
}
