//! Property-based tests over the core invariants, spanning crates.
//!
//! The offline build cannot fetch `proptest`, so cases are generated with
//! the workspace's own deterministic RNG: every property runs against 64
//! seeded random instances. Failures print the case seed, which fully
//! reproduces the instance.

use stembed::linalg::{pinv, Matrix};
use stembed::reldb::{cascade_delete, restore_journal, Database, SchemaBuilder, Value, ValueType};
use stembed_runtime::stream_rng;

const CASES: u64 = 64;

/// Build a two-relation parent/child database from generated data. `links`
/// maps each child to a parent index.
fn build_db(parent_count: usize, links: &[usize]) -> (Database, Vec<stembed::reldb::FactId>) {
    let mut b = SchemaBuilder::new();
    b.relation("P")
        .attr("pid", ValueType::Int)
        .attr("payload", ValueType::Int)
        .key(&["pid"]);
    b.relation("C")
        .attr("cid", ValueType::Int)
        .attr("parent", ValueType::Int)
        .key(&["cid"]);
    b.foreign_key("C", &["parent"], "P");
    let mut db = Database::new(b.build().unwrap());
    let mut parents = Vec::new();
    for i in 0..parent_count {
        parents.push(
            db.insert_into("P", vec![Value::Int(i as i64), Value::Int(i as i64 * 7)])
                .unwrap(),
        );
    }
    for (c, &p) in links.iter().enumerate() {
        db.insert_into(
            "C",
            vec![Value::Int(c as i64), Value::Int((p % parent_count) as i64)],
        )
        .unwrap();
    }
    (db, parents)
}

/// Cascade deletion + journal restore is the identity on the database,
/// regardless of reference topology and deletion target.
#[test]
fn cascade_then_restore_is_identity() {
    for case in 0..CASES {
        let mut rng = stream_rng(0x6a51, case);
        let parent_count = rng.random_range(1..8usize);
        let links: Vec<usize> = (0..rng.random_range(0..20usize))
            .map(|_| rng.random_range(0..8usize))
            .collect();
        let victim = rng.random_range(0..8usize);
        let orphans = rng.random_range(0..2usize) == 1;

        let (mut db, parents) = build_db(parent_count, &links);
        let before = stembed::reldb::text::to_text(&db);
        let victim = parents[victim % parent_count];
        let journal = cascade_delete(&mut db, victim, orphans).unwrap();
        // All constraints hold in the intermediate state.
        db.check_all_fks().unwrap();
        assert!(db.fact(victim).is_none(), "case {case}");
        restore_journal(&mut db, &journal).unwrap();
        assert_eq!(stembed::reldb::text::to_text(&db), before, "case {case}");
    }
}

/// After any cascade deletion the database satisfies every FK.
#[test]
fn cascade_never_dangles() {
    for case in 0..CASES {
        let mut rng = stream_rng(0xda17, case);
        let parent_count = rng.random_range(1..6usize);
        let links: Vec<usize> = (0..rng.random_range(0..25usize))
            .map(|_| rng.random_range(0..6usize))
            .collect();
        let victim = rng.random_range(0..6usize);

        let (mut db, parents) = build_db(parent_count, &links);
        cascade_delete(&mut db, parents[victim % parent_count], true).unwrap();
        db.check_all_fks().unwrap();
    }
}

/// Penrose condition 1 for the pseudoinverse on arbitrary matrices:
/// A·A⁺·A = A.
#[test]
fn pinv_penrose_one() {
    for case in 0..CASES {
        let mut rng = stream_rng(0x9137, case);
        let rows = rng.random_range(1..6usize);
        let cols = rng.random_range(1..6usize);
        let data: Vec<f64> = (0..rows * cols)
            .map(|_| rng.random_range(-10.0..10.0f64))
            .collect();

        let a = Matrix::from_vec(rows, cols, data);
        let ap = pinv(&a).unwrap();
        let back = a.matmul(&ap).unwrap().matmul(&a).unwrap();
        for (x, y) in back.as_slice().iter().zip(a.as_slice()) {
            assert!((x - y).abs() < 1e-6, "case {case}: A A+ A != A: {x} vs {y}");
        }
    }
}

/// Value parsing round-trips through Display for non-null values.
#[test]
fn value_display_parse_roundtrip() {
    for case in 0..CASES {
        let mut rng = stream_rng(0x0a1f, case);
        let i = rng.next_u64() as i64;
        let len = rng.random_range(1..=12usize);
        let t: String = (0..len)
            .map(|_| (b'a' + rng.random_range(0..26usize) as u8) as char)
            .collect();

        let v = Value::Int(i);
        assert_eq!(Value::parse(&v.to_string(), ValueType::Int).unwrap(), v);
        let v = Value::Text(t);
        let parsed = Value::parse(&v.to_string(), ValueType::Text).unwrap();
        assert_eq!(parsed, v, "case {case}");
    }
}

/// Build a seeded random graph for the walk properties.
fn random_graph(case: u64, salt: u64) -> (stembed::dbgraph::Graph, u64) {
    use stembed::dbgraph::{Graph, NodeId};
    let mut rng = stream_rng(salt, case);
    let mut g = Graph::new();
    for _ in 0..12 {
        g.add_node();
    }
    for _ in 0..rng.random_range(1..40usize) {
        let a = rng.random_range(0..12usize) as u32;
        let b = rng.random_range(0..12usize) as u32;
        if a != b {
            g.add_edge(NodeId(a), NodeId(b));
        }
    }
    g.finalize();
    (g, rng.next_u64())
}

/// Random walks over any generated graph only traverse real edges.
#[test]
fn walks_follow_edges() {
    use stembed::dbgraph::{WalkConfig, Walker};
    for case in 0..CASES {
        let (g, seed) = random_graph(case, 0xed6e);
        let cfg = WalkConfig {
            walks_per_node: 2,
            walk_length: 6,
            p: 0.5,
            q: 2.0,
        };
        let corpus = Walker::new(&g, cfg, seed).corpus();
        for walk in corpus.iter() {
            for pair in walk.windows(2) {
                assert!(g.has_edge(pair[0], pair[1]), "case {case}: non-edge");
            }
        }
    }
}

/// The flat token-arena corpus yields exactly the same (center, context)
/// pair stream as the equivalent nested `Vec<Vec<NodeId>>` corpus, for a
/// fixed context window, on seeded random graphs.
#[test]
fn flat_corpus_pair_stream_matches_nested() {
    use stembed::dbgraph::{NodeId, WalkConfig, Walker};
    const WINDOW: usize = 3;
    for case in 0..CASES {
        let (g, seed) = random_graph(case, 0xf1a7);
        let cfg = WalkConfig {
            walks_per_node: 3,
            walk_length: 8,
            ..Default::default()
        };
        let corpus = Walker::new(&g, cfg, seed).corpus();
        let nested: Vec<Vec<NodeId>> = corpus
            .iter()
            .map(<[stembed::dbgraph::NodeId]>::to_vec)
            .collect();

        let pairs_of = |walks: &mut dyn Iterator<Item = &[NodeId]>| -> Vec<(NodeId, NodeId)> {
            let mut pairs = Vec::new();
            for walk in walks {
                for (pos, &center) in walk.iter().enumerate() {
                    let lo = pos.saturating_sub(WINDOW);
                    let hi = (pos + WINDOW).min(walk.len() - 1);
                    for (ctx_pos, &context) in walk.iter().enumerate().take(hi + 1).skip(lo) {
                        if ctx_pos != pos {
                            pairs.push((center, context));
                        }
                    }
                }
            }
            pairs
        };
        let flat_pairs = pairs_of(&mut corpus.iter());
        let nested_pairs = pairs_of(&mut nested.iter().map(std::vec::Vec::as_slice));
        assert!(!flat_pairs.is_empty() || corpus.is_empty(), "case {case}");
        assert_eq!(flat_pairs, nested_pairs, "case {case}: pair streams differ");
        // And the flat corpus round-trips through the nested form.
        assert_eq!(
            stembed::dbgraph::WalkCorpus::from_nested(&nested),
            corpus,
            "case {case}"
        );
    }
}

/// Alias-method negative sampling draws from the smoothed unigram
/// distribution: chi-square of the empirical histogram against the exact
/// `count^0.75` masses stays within a generous envelope on seeded cases.
#[test]
fn negative_table_matches_smoothed_frequencies() {
    use stembed::node2vec::NegativeTable;
    const DRAWS: usize = 20_000;
    for case in 0..16 {
        let mut rng = stream_rng(0xa1ce, case);
        let n = rng.random_range(2..20usize);
        let counts: Vec<usize> = (0..n).map(|_| rng.random_range(0..300usize)).collect();
        if counts.iter().all(|&c| c == 0) {
            continue;
        }
        let table = NegativeTable::new(&counts);
        let mut hist = vec![0usize; n];
        let mut draw_rng = stream_rng(0xd0d0, case);
        for _ in 0..DRAWS {
            hist[table.sample(&mut draw_rng)] += 1;
        }
        let weights: Vec<f64> = counts.iter().map(|&c| (c as f64).powf(0.75)).collect();
        let total: f64 = weights.iter().sum();
        let mut chi = 0.0;
        let mut dof = 0usize;
        for i in 0..n {
            let expect = DRAWS as f64 * weights[i] / total;
            if expect == 0.0 {
                assert_eq!(hist[i], 0, "case {case}: zero-mass slot {i} sampled");
                continue;
            }
            chi += (hist[i] as f64 - expect).powi(2) / expect;
            dof += 1;
        }
        let bound = (dof as f64 - 1.0) + 6.0 * (2.0 * dof as f64).sqrt() + 6.0;
        assert!(
            chi < bound,
            "case {case}: chi-square {chi:.1} over {bound:.1}"
        );
    }
}
