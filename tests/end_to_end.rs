//! End-to-end integration tests: the full static + dynamic pipeline of the
//! paper on a generated benchmark database, through the public API only.

use stembed::core::{ForwardConfig, ForwardEmbedder, Node2VecEmbedder, TupleEmbedder};
use stembed::datasets::{self, DatasetParams};
use stembed::node2vec::Node2VecConfig;
use stembed::reldb::{cascade_delete, restore_journal, FactId};

fn embedders(ds: &stembed::datasets::Dataset) -> Vec<Box<dyn TupleEmbedder>> {
    let fwd_cfg = ForwardConfig {
        dim: 12,
        epochs: 6,
        nsamples: 15,
        ..ForwardConfig::small()
    };
    let n2v_cfg = Node2VecConfig {
        dim: 12,
        epochs: 2,
        walks_per_node: 4,
        ..Node2VecConfig::small()
    };
    vec![
        Box::new(
            ForwardEmbedder::train(&ds.db, ds.prediction_rel, &fwd_cfg, 3).expect("FoRWaRD trains"),
        ),
        Box::new(Node2VecEmbedder::train(&ds.db, &n2v_cfg, 3)),
    ]
}

/// Both embedders embed every prediction fact of every generated dataset
/// (tiny scale) with finite vectors.
#[test]
fn static_phase_covers_all_prediction_facts() {
    for ds in datasets::all_datasets(&DatasetParams::tiny(1)) {
        for emb in embedders(&ds) {
            for (fact, _) in &ds.labels {
                let v = emb
                    .embedding(*fact)
                    .unwrap_or_else(|| panic!("{}: {fact} not embedded", ds.name));
                assert!(v.iter().all(|x| x.is_finite()), "{}: non-finite", ds.name);
            }
        }
    }
}

/// The full dynamic loop on one dataset: delete → train → re-insert →
/// extend → old vectors bit-identical, new facts embedded.
#[test]
fn dynamic_phase_is_stable_for_both_methods() {
    let ds = datasets::mutagenesis::generate(&DatasetParams::tiny(5));
    let mut db = ds.db.clone();
    // Remove three molecules with cascade.
    let victims: Vec<FactId> = ds.labels.iter().take(3).map(|(f, _)| *f).collect();
    let mut journals = Vec::new();
    for &v in &victims {
        journals.push(cascade_delete(&mut db, v, true).expect("cascade"));
    }

    let fwd_cfg = ForwardConfig {
        dim: 12,
        epochs: 6,
        nsamples: 15,
        ..ForwardConfig::small()
    };
    let n2v_cfg = Node2VecConfig {
        dim: 12,
        epochs: 2,
        walks_per_node: 4,
        ..Node2VecConfig::small()
    };
    let mut embs: Vec<Box<dyn TupleEmbedder>> = vec![
        Box::new(ForwardEmbedder::train(&db, ds.prediction_rel, &fwd_cfg, 3).unwrap()),
        Box::new(Node2VecEmbedder::train(&db, &n2v_cfg, 3)),
    ];

    let old_facts: Vec<FactId> = ds
        .labels
        .iter()
        .map(|(f, _)| *f)
        .filter(|f| !victims.contains(f))
        .collect();
    let snapshots: Vec<Vec<Vec<f64>>> = embs
        .iter()
        .map(|e| {
            old_facts
                .iter()
                .map(|&f| e.embedding(f).unwrap().to_vec())
                .collect()
        })
        .collect();

    // One-by-one re-insertion in inverse deletion order.
    for journal in journals.iter().rev() {
        let restored = restore_journal(&mut db, journal).expect("restore");
        for emb in embs.iter_mut() {
            emb.extend(&db, &restored, 17).expect("extend");
        }
    }

    for (emb, snapshot) in embs.iter().zip(&snapshots) {
        for (i, &f) in old_facts.iter().enumerate() {
            assert_eq!(
                emb.embedding(f).unwrap(),
                snapshot[i].as_slice(),
                "{}: old fact {f} drifted",
                emb.name()
            );
        }
        for &v in &victims {
            assert!(
                emb.embedding(v).is_some(),
                "{}: new fact {v} not embedded",
                emb.name()
            );
        }
    }
}

/// Deleting a tuple drops its embedding (paper §VII) without touching the
/// rest.
#[test]
fn deletion_forgets_only_the_deleted_tuple() {
    let ds = datasets::world::generate(&DatasetParams::tiny(2));
    let cfg = ForwardConfig {
        dim: 12,
        epochs: 5,
        nsamples: 15,
        ..ForwardConfig::small()
    };
    let mut emb =
        stembed::core::ForwardEmbedding::train(&ds.db, ds.prediction_rel, &cfg, 1).unwrap();
    let victim = ds.labels[0].0;
    let keeper = ds.labels[1].0;
    let keeper_vec = emb.embedding(keeper).unwrap().to_vec();
    assert!(emb.forget(victim));
    assert!(emb.embedding(victim).is_none());
    assert_eq!(emb.embedding(keeper).unwrap(), keeper_vec.as_slice());
}

/// The generated datasets survive a full serialisation round trip.
#[test]
fn datasets_roundtrip_through_text_format() {
    let ds = datasets::genes::generate(&DatasetParams::tiny(3));
    let text = stembed::reldb::text::to_text(&ds.db);
    let db2 = stembed::reldb::text::from_text(&text).expect("reparse");
    assert_eq!(db2.total_facts(), ds.db.total_facts());
    assert_eq!(stembed::reldb::text::to_text(&db2), text);
}
