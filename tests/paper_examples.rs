//! Integration tests pinning the paper's worked examples, end to end
//! through the public API of the umbrella crate.

use stembed::core::schemes::{enumerate_schemes, target_pairs};
use stembed::core::walkdist::{destination_distribution, destination_value_distribution};
use stembed::dbgraph::DbGraph;
use stembed::reldb::movies::{movies_database_labeled, movies_schema};
use stembed::reldb::{cascade_delete, Value};

/// Example 2.1: the database of Figure 2 satisfies its constraints; m3's
/// genre is ⊥; the FK MOVIES[studio] ⊆ STUDIOS[sid] resolves s03 → s3.
#[test]
fn example_2_1_database_and_constraints() {
    let (db, ids) = movies_database_labeled();
    db.check_all_fks()
        .expect("Figure 2 satisfies all constraints");
    assert!(db.fact(ids["m3"]).unwrap().get(3).is_null());
    let movies = db.schema().relation_id("MOVIES").unwrap();
    let fk = db.schema().fks_from(movies)[0];
    assert_eq!(db.resolve_fk(fk, ids["m1"]).unwrap(), Some(ids["s3"]));
    // Key uniqueness: inserting a second fact with mid=m01 must fail.
    let mut db2 = db.clone();
    assert!(db2
        .insert_into(
            "MOVIES",
            vec![
                "m01".into(),
                "s01".into(),
                "Clone".into(),
                Value::Null,
                Value::Int(1)
            ],
        )
        .is_err());
}

/// Example 3.1: inserting c4 into D \ {c4} touches only the new fact; the
/// references a1, a4, m6 are resolvable from the new fact.
#[test]
fn example_3_1_insertion_scenario() {
    let (mut db, ids) = movies_database_labeled();
    let journal = cascade_delete(&mut db, ids["c4"], false).unwrap();
    assert_eq!(journal.len(), 1, "c4 has no referencing facts");
    stembed::reldb::restore_journal(&mut db, &journal).unwrap();
    let collabs = db.schema().relation_id("COLLABORATIONS").unwrap();
    let fks = db.schema().fks_from(collabs);
    assert_eq!(db.resolve_fk(fks[0], ids["c4"]).unwrap(), Some(ids["a1"]));
    assert_eq!(db.resolve_fk(fks[1], ids["c4"]).unwrap(), Some(ids["a4"]));
    assert_eq!(db.resolve_fk(fks[2], ids["c4"]).unwrap(), Some(ids["m6"]));
}

/// Example 5.1 / Figure 4: scheme enumeration from ACTORS.
#[test]
fn example_5_1_scheme_enumeration() {
    let schema = movies_schema();
    let actors = schema.relation_id("ACTORS").unwrap();
    let schemes = enumerate_schemes(&schema, actors, 3, false);
    // 1 trivial + 2 + 4 + 4 (the paper's figure draws 9; see the module
    // docs of stembed::core::schemes for the discrepancy analysis).
    assert_eq!(schemes.len(), 11);
    // Every non-trivial scheme starts from ACTORS and follows valid FK
    // steps.
    for s in &schemes {
        assert_eq!(s.start, actors);
        let mut cur = actors;
        for step in &s.steps {
            assert_eq!(step.source(&schema), cur);
            cur = step.destination(&schema);
        }
        assert_eq!(cur, s.end(&schema));
    }
}

/// Examples 5.2 and 5.3: exact walk and value distributions (with the
/// actor1/actor2 typo in the paper's s5 corrected — the stated walks
/// `(a1,c1,m3)`, `(a1,c4,m6)` require the actor1 scheme).
#[test]
fn examples_5_2_and_5_3_distributions() {
    let (db, ids) = movies_database_labeled();
    let schema = db.schema();
    let actors = schema.relation_id("ACTORS").unwrap();
    let s5 = enumerate_schemes(schema, actors, 2, false)
        .into_iter()
        .find(|s| {
            s.display(schema).to_string()
                == "ACTORS[aid]—COLLABORATIONS[actor1], COLLABORATIONS[movie]—MOVIES[mid]"
        })
        .unwrap();
    let d = destination_distribution(&db, &s5, ids["a1"], 64).unwrap();
    assert_eq!(d.support.len(), 2);
    for (f, p) in &d.support {
        assert!(*f == ids["m3"] || *f == ids["m6"]);
        assert!((p - 0.5).abs() < 1e-12);
    }
    let budget = destination_value_distribution(&db, &s5, 4, ids["a1"], 64).unwrap();
    assert!((budget.prob(&Value::Int(150)) - 0.5).abs() < 1e-12);
    assert!((budget.prob(&Value::Int(100)) - 0.5).abs() < 1e-12);
    let genre = destination_value_distribution(&db, &s5, 3, ids["a1"], 64).unwrap();
    assert!((genre.prob(&Value::Text("Bio".into())) - 1.0) < 1e-12);
    assert_eq!(genre.support.len(), 1);
}

/// Example 6.1 (with its m4-vs-m3 typo corrected): cascade deletion of c1
/// collects Watanabe and Godzilla but spares DiCaprio.
#[test]
fn example_6_1_cascade() {
    let (mut db, ids) = movies_database_labeled();
    let journal = cascade_delete(&mut db, ids["c1"], true).unwrap();
    let removed: Vec<_> = journal.ids().collect();
    assert!(removed.contains(&ids["c1"]));
    assert!(removed.contains(&ids["a2"]));
    assert!(removed.contains(&ids["m3"]));
    assert!(db.fact(ids["a1"]).is_some());
    db.check_all_fks().unwrap();
}

/// The target set `T(R, ℓmax)` pairs schemes only with FK-free attributes
/// (paper §V-C).
#[test]
fn target_pairs_exclude_fk_attributes() {
    let schema = movies_schema();
    let actors = schema.relation_id("ACTORS").unwrap();
    for t in target_pairs(&schema, actors, 3) {
        let end = t.scheme.end(&schema);
        assert!(!schema.attr_in_any_fk(end, t.attr));
    }
}

/// Figure 3: the bipartite graph of the movie database has the edges the
/// figure draws, and the FK identification merges exactly the right nodes.
#[test]
fn figure_3_graph_fragment() {
    let (db, ids) = movies_database_labeled();
    let g = DbGraph::build(&db);
    let schema = db.schema();
    let movies = schema.relation_id("MOVIES").unwrap();
    let studios = schema.relation_id("STUDIOS").unwrap();
    // Identified node: s03 via MOVIES.studio == s03 via STUDIOS.sid.
    assert_eq!(
        g.value_node(movies, 1, &Value::Text("s03".into())),
        g.value_node(studios, 0, &Value::Text("s03".into()))
    );
    // v(m4) — u(…budget…160) — v(m2): shared numeric value in one column.
    let budget = g.value_node(movies, 4, &Value::Int(160)).unwrap();
    assert!(g.graph().has_edge(g.fact_node(ids["m4"]).unwrap(), budget));
    assert!(g.graph().has_edge(g.fact_node(ids["m2"]).unwrap(), budget));
}
