//! Thread-count invariance: the same master seed must produce
//! **bit-identical** results at 1, 2, and 8 runtime shards, for every
//! randomised pipeline in the workspace. This is the contract that makes
//! the parallel runtime safe to scale: the shard count is a pure
//! performance knob, never a semantics knob.
//!
//! The mechanism under test (see `stembed-runtime`): RNG streams are
//! derived per logical item (start node, target, chunk), parallel maps
//! return results in item order, and floating-point reductions merge
//! fixed-size chunks in chunk order.

use stembed::core::{ForwardConfig, ForwardEmbedding};
use stembed::dbgraph::{DbGraph, NodeId, WalkConfig, Walker};
use stembed::node2vec::{Node2VecConfig, Node2VecModel};
use stembed::reldb::{cascade_delete, restore_journal};
use stembed::runtime::Runtime;

const SHARDS: [usize; 3] = [1, 2, 8];

fn movies() -> (
    stembed::reldb::Database,
    std::collections::HashMap<&'static str, stembed::reldb::FactId>,
) {
    stembed::reldb::movies::movies_database_labeled()
}

#[test]
fn walk_corpus_is_bit_identical_across_shard_counts() {
    let (db, _) = movies();
    let g = DbGraph::build(&db);
    let cfg = WalkConfig {
        walks_per_node: 12,
        walk_length: 10,
        p: 0.7,
        q: 1.4,
    };
    let corpora: Vec<_> = SHARDS
        .iter()
        .map(|&s| Walker::with_runtime(g.graph(), cfg.clone(), 2023, Runtime::new(s)).corpus())
        .collect();
    assert!(!corpora[0].is_empty());
    for (i, c) in corpora.iter().enumerate().skip(1) {
        assert_eq!(c, &corpora[0], "shards={} diverged", SHARDS[i]);
    }
}

#[test]
fn forward_training_is_bit_identical_across_shard_counts() {
    let (db, _) = movies();
    let actors = db.schema().relation_id("ACTORS").unwrap();
    let cfg = ForwardConfig {
        dim: 12,
        epochs: 5,
        nsamples: 30,
        batch_size: 8, // exercise the parallel minibatch reduction
        ..ForwardConfig::small()
    };
    let embeddings: Vec<ForwardEmbedding> = SHARDS
        .iter()
        .map(|&s| {
            ForwardEmbedding::train_with_runtime(&db, actors, &cfg, 7, Runtime::new(s)).unwrap()
        })
        .collect();
    for (i, emb) in embeddings.iter().enumerate().skip(1) {
        for f in db.fact_ids(actors) {
            let a = embeddings[0].embedding(f).unwrap();
            let b = emb.embedding(f).unwrap();
            // Bit-level comparison: f64 equality would already fail on any
            // reordered float sum, but make the intent explicit.
            let a_bits: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
            let b_bits: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a_bits, b_bits, "shards={}: ϕ({f}) diverged", SHARDS[i]);
        }
        // Training diagnostics must agree too (same samples, same order).
        assert_eq!(emb.epoch_losses(), embeddings[0].epoch_losses());
    }
}

#[test]
fn dynamic_extension_is_bit_identical_across_shard_counts() {
    let (db0, ids) = movies();
    let mut db = db0.clone();
    let journal = cascade_delete(&mut db, ids["a5"], false).unwrap();
    let actors = db.schema().relation_id("ACTORS").unwrap();
    let cfg = ForwardConfig {
        dim: 8,
        epochs: 4,
        nsamples: 25,
        ..ForwardConfig::small()
    };

    let vectors: Vec<Vec<u64>> = SHARDS
        .iter()
        .map(|&s| {
            let mut emb =
                ForwardEmbedding::train_with_runtime(&db, actors, &cfg, 5, Runtime::new(s))
                    .unwrap();
            let mut db2 = db.clone();
            restore_journal(&mut db2, &journal).unwrap();
            emb.extend(&db2, ids["a5"], 11).unwrap();
            emb.embedding(ids["a5"])
                .unwrap()
                .iter()
                .map(|v| v.to_bits())
                .collect()
        })
        .collect();
    for (i, v) in vectors.iter().enumerate().skip(1) {
        assert_eq!(v, &vectors[0], "shards={}: extension diverged", SHARDS[i]);
    }
}

#[test]
fn cached_and_uncached_extension_are_bit_identical_across_shard_counts() {
    // Property (over several master seeds): the walk-distribution cache is
    // semantically invisible. A batch extension on the persistent cache
    // (warm from the first fact onwards) and per-fact solves on throwaway
    // caches produce bit-identical ϕ(f_new), at 1, 2, and 8 shards.
    use stembed::core::ExtendOptions;
    use stembed::runtime::derive_seed;

    let (db0, ids) = movies();
    let mut db = db0.clone();
    let j_a5 = cascade_delete(&mut db, ids["a5"], false).unwrap();
    let j_a3 = cascade_delete(&mut db, ids["a3"], false).unwrap();
    let actors = db.schema().relation_id("ACTORS").unwrap();
    let cfg = ForwardConfig {
        dim: 8,
        epochs: 4,
        nsamples: 25,
        ..ForwardConfig::small()
    };
    let new_facts = [ids["a3"], ids["a5"]];

    for master_seed in [3u64, 17, 99] {
        let run = |shards: usize, cached: bool| -> Vec<Vec<u64>> {
            let mut emb = ForwardEmbedding::train_with_runtime(
                &db,
                actors,
                &cfg,
                master_seed,
                Runtime::new(shards),
            )
            .unwrap();
            let mut db2 = db.clone();
            restore_journal(&mut db2, &j_a3).unwrap();
            restore_journal(&mut db2, &j_a5).unwrap();
            if cached {
                emb.extend_batch(&db2, &new_facts, master_seed ^ 0xbeef)
                    .unwrap();
                assert!(
                    emb.dist_cache().stats().hits > 0,
                    "the cached path must actually hit"
                );
            } else {
                for (i, &f) in new_facts.iter().enumerate() {
                    emb.extend_with(
                        &db2,
                        f,
                        derive_seed(master_seed ^ 0xbeef, i as u64),
                        ExtendOptions {
                            nnew_samples: None,
                            reuse_cache: false,
                        },
                    )
                    .unwrap();
                }
                assert!(emb.dist_cache().is_empty(), "uncached path kept entries");
            }
            new_facts
                .iter()
                .map(|&f| {
                    emb.embedding(f)
                        .unwrap()
                        .iter()
                        .map(|v| v.to_bits())
                        .collect()
                })
                .collect()
        };
        let base = run(1, true);
        for &shards in &SHARDS {
            for cached in [true, false] {
                if shards == 1 && cached {
                    continue; // that configuration *is* the baseline
                }
                assert_eq!(
                    run(shards, cached),
                    base,
                    "seed={master_seed} shards={shards} cached={cached} diverged"
                );
            }
        }
    }
}

#[test]
fn cache_survives_a_delete_restore_cycle_without_changing_results() {
    // Invalidation property: mutating the database between extensions
    // (delete → restore of an unrelated fact) must leave the final vector
    // exactly what a cold-cache solve computes.
    let (db0, ids) = movies();
    let mut db = db0.clone();
    let journal = cascade_delete(&mut db, ids["a5"], false).unwrap();
    let actors = db.schema().relation_id("ACTORS").unwrap();
    let cfg = ForwardConfig {
        dim: 8,
        epochs: 4,
        nsamples: 25,
        ..ForwardConfig::small()
    };
    let emb0 = ForwardEmbedding::train(&db, actors, &cfg, 5).unwrap();
    restore_journal(&mut db, &journal).unwrap();

    // Warm the cache, then run the db through a delete→restore cycle.
    let mut warm = emb0.clone();
    warm.extend(&db, ids["a5"], 11).unwrap();
    let j_m6 = cascade_delete(&mut db, ids["m6"], false).unwrap();
    restore_journal(&mut db, &j_m6).unwrap();
    warm.forget(ids["a5"]);
    warm.extend(&db, ids["a5"], 11).unwrap();

    let mut cold = emb0.clone();
    cold.extend(&db, ids["a5"], 11).unwrap();

    let a: Vec<u64> = warm
        .embedding(ids["a5"])
        .unwrap()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let b: Vec<u64> = cold
        .embedding(ids["a5"])
        .unwrap()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_eq!(a, b, "cycled warm cache diverged from cold solve");
    let stats = warm.dist_cache().stats();
    assert!(
        stats.replays >= 1 || stats.invalidations >= 1,
        "the cycle must have been caught up (replay) or cleared"
    );
}

#[test]
fn fine_grained_invalidation_is_bit_identical_to_cold_caches() {
    // Property: across a whole insert/delete/restore *sequence*, a single
    // retained cache — caught up after every mutation by journal replay,
    // evicting only FK-reachable entries — produces bit-identical vectors
    // to throwaway caches (nothing read before a solve, nothing kept
    // after), at 1, 2, and 8 shards.
    use stembed::core::ExtendOptions;

    let (db0, ids) = movies();
    let mut base = db0.clone();
    let j_a5 = cascade_delete(&mut base, ids["a5"], false).unwrap();
    let j_a3 = cascade_delete(&mut base, ids["a3"], false).unwrap();
    let actors = base.schema().relation_id("ACTORS").unwrap();
    let cfg = ForwardConfig {
        dim: 8,
        epochs: 4,
        nsamples: 25,
        ..ForwardConfig::small()
    };

    // One run = the full mutation/extension sequence; returns the solved
    // vector bits after every extension step.
    let run = |shards: usize, retained: bool| -> Vec<Vec<u64>> {
        let mut emb =
            ForwardEmbedding::train_with_runtime(&base, actors, &cfg, 23, Runtime::new(shards))
                .unwrap();
        let mut db = base.clone();
        let mut out: Vec<Vec<u64>> = Vec::new();
        let mut step = 0u64;
        let mut extend = |emb: &mut ForwardEmbedding, db: &stembed::reldb::Database, f| {
            step += 1;
            if retained {
                emb.extend(db, f, step).unwrap();
            } else {
                emb.extend_with(
                    db,
                    f,
                    step,
                    ExtendOptions {
                        nnew_samples: None,
                        reuse_cache: false,
                    },
                )
                .unwrap();
            }
            out.push(
                emb.embedding(f)
                    .unwrap()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect(),
            );
        };

        // Insert round 1: a3 comes back (restore mutations), extend it.
        restore_journal(&mut db, &j_a3).unwrap();
        extend(&mut emb, &db, ids["a3"]);
        // Insert round 2: a5 comes back, extend it (a3's entries warm).
        restore_journal(&mut db, &j_a5).unwrap();
        extend(&mut emb, &db, ids["a5"]);
        // A mutation most schemes cannot reach: a brand-new studio.
        db.insert_into("STUDIOS", vec!["s9".into(), "A24".into(), "NY".into()])
            .unwrap();
        emb.forget(ids["a3"]);
        extend(&mut emb, &db, ids["a3"]);
        // A mutation hitting walk-scheme interiors: cascade-delete m6.
        let j_m6 = cascade_delete(&mut db, ids["m6"], false).unwrap();
        emb.forget(ids["a5"]);
        extend(&mut emb, &db, ids["a5"]);
        // And the matching restore.
        restore_journal(&mut db, &j_m6).unwrap();
        emb.forget(ids["a3"]);
        extend(&mut emb, &db, ids["a3"]);

        let stats = emb.dist_cache().stats();
        if retained {
            assert!(stats.hits > 0, "retained cache must actually serve hits");
            assert!(stats.replays >= 3, "mutations must be caught up by replay");
            assert_eq!(
                stats.invalidations, 0,
                "nothing in this sequence may force a full clear"
            );
        } else {
            assert!(emb.dist_cache().is_empty(), "throwaway caches persisted");
        }
        out
    };

    let baseline = run(1, true);
    assert_eq!(baseline.len(), 5);
    for &shards in &SHARDS {
        for retained in [true, false] {
            if shards == 1 && retained {
                continue; // that configuration *is* the baseline
            }
            assert_eq!(
                run(shards, retained),
                baseline,
                "shards={shards} retained={retained} diverged"
            );
        }
    }
}

#[test]
fn plan_evaluated_extension_is_bit_identical_to_cold_caches() {
    // Scheme-plan property: dynamic extension pre-warms exact
    // distributions in the plan's DFS order, so every non-root scheme is
    // assembled as "cached parent frontier + 1 step" through the cache's
    // prefix tier. That factored evaluation must be semantically
    // invisible: across an insert/delete/restore sequence and at 1, 2,
    // and 8 shards, the solved vectors are bit-identical to throwaway
    // caches that never see a second scheme.
    use stembed::core::ExtendOptions;

    let (db0, ids) = movies();
    let mut base = db0.clone();
    let j_a5 = cascade_delete(&mut base, ids["a5"], false).unwrap();
    let actors = base.schema().relation_id("ACTORS").unwrap();
    let cfg = ForwardConfig {
        dim: 8,
        epochs: 4,
        nsamples: 25,
        ..ForwardConfig::small()
    };

    let run = |shards: usize, retained: bool| -> Vec<Vec<u64>> {
        let mut emb =
            ForwardEmbedding::train_with_runtime(&base, actors, &cfg, 23, Runtime::new(shards))
                .unwrap();
        // The plan itself is shard-independent: one trie per target set.
        let plan = emb.scheme_plan();
        assert!(plan.shared_step_count() < plan.flat_step_count());
        let mut db = base.clone();
        let mut out: Vec<Vec<u64>> = Vec::new();
        let mut step = 0u64;
        let mut extend = |emb: &mut ForwardEmbedding, db: &stembed::reldb::Database, f| {
            step += 1;
            let options = ExtendOptions {
                nnew_samples: None,
                reuse_cache: retained,
            };
            emb.extend_with(db, f, step, options).unwrap();
            out.push(
                emb.embedding(f)
                    .unwrap()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect(),
            );
        };

        // Insert: a5 comes back, extend it.
        restore_journal(&mut db, &j_a5).unwrap();
        extend(&mut emb, &db, ids["a5"]);
        // Delete + restore an interior fact, re-extend after each.
        let j_m6 = cascade_delete(&mut db, ids["m6"], false).unwrap();
        emb.forget(ids["a5"]);
        extend(&mut emb, &db, ids["a5"]);
        restore_journal(&mut db, &j_m6).unwrap();
        emb.forget(ids["a5"]);
        extend(&mut emb, &db, ids["a5"]);

        let stats = emb.dist_cache().stats();
        if retained {
            assert!(
                stats.prefix_hits > 0,
                "plan-order pre-warm must resume cached parent frontiers"
            );
            assert!(
                stats.prefix_hit_rate() >= 0.5,
                "frontier lookups mostly extend a cached parent (rate {})",
                stats.prefix_hit_rate()
            );
        } else {
            assert!(emb.dist_cache().is_empty(), "throwaway caches persisted");
        }
        out
    };

    let baseline = run(1, true);
    assert_eq!(baseline.len(), 3);
    for &shards in &SHARDS {
        for retained in [true, false] {
            if shards == 1 && retained {
                continue; // that configuration *is* the baseline
            }
            assert_eq!(
                run(shards, retained),
                baseline,
                "shards={shards} retained={retained} diverged"
            );
        }
    }
}

#[test]
fn wrapped_journal_falls_back_without_changing_results() {
    // With the journal disabled (capacity 0) every mutation is a forced
    // full clear — slower, but the solved vectors must not move a bit.
    let (db0, ids) = movies();
    let mut base = db0.clone();
    let j_a5 = cascade_delete(&mut base, ids["a5"], false).unwrap();
    let actors = base.schema().relation_id("ACTORS").unwrap();
    let cfg = ForwardConfig {
        dim: 8,
        epochs: 4,
        nsamples: 25,
        ..ForwardConfig::small()
    };
    let emb0 = ForwardEmbedding::train(&base, actors, &cfg, 31).unwrap();

    let run = |journal_capacity: Option<usize>| -> (Vec<u64>, stembed::core::DistCacheStats) {
        let mut db = base.clone();
        if let Some(cap) = journal_capacity {
            db.set_journal_capacity(cap);
        }
        let mut emb = emb0.clone();
        restore_journal(&mut db, &j_a5).unwrap();
        emb.extend(&db, ids["a5"], 7).unwrap();
        // Mutate (unreachable relation) and re-solve on the retained cache.
        db.insert_into("STUDIOS", vec!["s9".into(), "A24".into(), "NY".into()])
            .unwrap();
        emb.forget(ids["a5"]);
        emb.extend(&db, ids["a5"], 7).unwrap();
        let bits = emb
            .embedding(ids["a5"])
            .unwrap()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        (bits, emb.dist_cache().stats())
    };

    let (with_journal, stats_journal) = run(None);
    let (without_journal, stats_cleared) = run(Some(0));
    assert_eq!(with_journal, without_journal, "fallback changed the result");
    // The two runs must have taken the two different paths.
    assert!(stats_journal.replays >= 1 && stats_journal.invalidations == 0);
    assert!(stats_cleared.invalidations >= 1 && stats_cleared.replays == 0);
}

#[test]
fn node2vec_sgns_is_bit_identical_across_shard_counts() {
    let (db, _) = movies();
    let g = DbGraph::build(&db);
    let cfg = Node2VecConfig::small();
    let models: Vec<Node2VecModel> = SHARDS
        .iter()
        .map(|&s| Node2VecModel::train_with_runtime(g.graph(), &cfg, 42, Runtime::new(s)))
        .collect();
    for (i, m) in models.iter().enumerate().skip(1) {
        for node in g.graph().node_ids() {
            let a: Vec<u32> = models[0]
                .embedding(node)
                .iter()
                .map(|v| v.to_bits())
                .collect();
            let b: Vec<u32> = m.embedding(node).iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "shards={}: node {node:?} diverged", SHARDS[i]);
        }
    }
}

#[test]
fn node2vec_dynamic_extension_is_bit_identical_across_shard_counts() {
    // Three retained extend rounds: the model's incrementally-maintained
    // negative-sampling table and walk arena must stay bit-identical at
    // every shard count after every round, for every embedded node.
    let (db0, ids) = movies();
    let mut db = db0.clone();
    let victims = ["c4", "c1", "c2"];
    let journals: Vec<_> = victims
        .iter()
        .map(|v| cascade_delete(&mut db, ids[v], false).unwrap())
        .collect();
    let results: Vec<Vec<Vec<u32>>> = SHARDS
        .iter()
        .map(|&s| {
            let mut g = DbGraph::build(&db);
            let mut model = Node2VecModel::train_with_runtime(
                g.graph(),
                &Node2VecConfig::small(),
                9,
                Runtime::new(s),
            );
            let mut db2 = db.clone();
            let mut per_round = Vec::new();
            for (round, journal) in journals.iter().rev().enumerate() {
                restore_journal(&mut db2, journal).unwrap();
                let victim = ids[victims[victims.len() - 1 - round]];
                let new_nodes = g.extend_with_fact(&db2, victim);
                model.extend(g.graph(), &new_nodes, 3 + round as u64);
                per_round.push(
                    g.graph()
                        .node_ids()
                        .flat_map(|n| model.embedding(n).iter().map(|v| v.to_bits()))
                        .collect::<Vec<u32>>(),
                );
            }
            per_round
        })
        .collect();
    for (i, v) in results.iter().enumerate().skip(1) {
        assert_eq!(
            v, &results[0],
            "shards={}: n2v extension diverged",
            SHARDS[i]
        );
    }
}

#[test]
fn walk_corpus_differs_across_seeds() {
    // Guard against the degenerate "determinism because nothing is random"
    // failure mode: different seeds must produce different corpora.
    let (db, _) = movies();
    let g = DbGraph::build(&db);
    let cfg = WalkConfig {
        walks_per_node: 12,
        walk_length: 10,
        ..Default::default()
    };
    let c1 = Walker::with_runtime(g.graph(), cfg.clone(), 1, Runtime::new(4)).corpus();
    let c2 = Walker::with_runtime(g.graph(), cfg, 2, Runtime::new(4)).corpus();
    assert_ne!(c1, c2);
    let _ = NodeId(0);
}
