//! Thread-count invariance: the same master seed must produce
//! **bit-identical** results at 1, 2, and 8 runtime shards, for every
//! randomised pipeline in the workspace. This is the contract that makes
//! the parallel runtime safe to scale: the shard count is a pure
//! performance knob, never a semantics knob.
//!
//! The mechanism under test (see `stembed-runtime`): RNG streams are
//! derived per logical item (start node, target, chunk), parallel maps
//! return results in item order, and floating-point reductions merge
//! fixed-size chunks in chunk order.

use stembed::core::{ForwardConfig, ForwardEmbedding};
use stembed::dbgraph::{DbGraph, NodeId, WalkConfig, Walker};
use stembed::node2vec::{Node2VecConfig, Node2VecModel};
use stembed::reldb::{cascade_delete, restore_journal};
use stembed::runtime::Runtime;

const SHARDS: [usize; 3] = [1, 2, 8];

fn movies() -> (
    stembed::reldb::Database,
    std::collections::HashMap<&'static str, stembed::reldb::FactId>,
) {
    stembed::reldb::movies::movies_database_labeled()
}

#[test]
fn walk_corpus_is_bit_identical_across_shard_counts() {
    let (db, _) = movies();
    let g = DbGraph::build(&db);
    let cfg = WalkConfig {
        walks_per_node: 12,
        walk_length: 10,
        p: 0.7,
        q: 1.4,
    };
    let corpora: Vec<_> = SHARDS
        .iter()
        .map(|&s| Walker::with_runtime(g.graph(), cfg.clone(), 2023, Runtime::new(s)).corpus())
        .collect();
    assert!(!corpora[0].is_empty());
    for (i, c) in corpora.iter().enumerate().skip(1) {
        assert_eq!(c, &corpora[0], "shards={} diverged", SHARDS[i]);
    }
}

#[test]
fn forward_training_is_bit_identical_across_shard_counts() {
    let (db, _) = movies();
    let actors = db.schema().relation_id("ACTORS").unwrap();
    let cfg = ForwardConfig {
        dim: 12,
        epochs: 5,
        nsamples: 30,
        batch_size: 8, // exercise the parallel minibatch reduction
        ..ForwardConfig::small()
    };
    let embeddings: Vec<ForwardEmbedding> = SHARDS
        .iter()
        .map(|&s| {
            ForwardEmbedding::train_with_runtime(&db, actors, &cfg, 7, Runtime::new(s)).unwrap()
        })
        .collect();
    for (i, emb) in embeddings.iter().enumerate().skip(1) {
        for f in db.fact_ids(actors) {
            let a = embeddings[0].embedding(f).unwrap();
            let b = emb.embedding(f).unwrap();
            // Bit-level comparison: f64 equality would already fail on any
            // reordered float sum, but make the intent explicit.
            let a_bits: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
            let b_bits: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a_bits, b_bits, "shards={}: ϕ({f}) diverged", SHARDS[i]);
        }
        // Training diagnostics must agree too (same samples, same order).
        assert_eq!(emb.epoch_losses(), embeddings[0].epoch_losses());
    }
}

#[test]
fn dynamic_extension_is_bit_identical_across_shard_counts() {
    let (db0, ids) = movies();
    let mut db = db0.clone();
    let journal = cascade_delete(&mut db, ids["a5"], false).unwrap();
    let actors = db.schema().relation_id("ACTORS").unwrap();
    let cfg = ForwardConfig {
        dim: 8,
        epochs: 4,
        nsamples: 25,
        ..ForwardConfig::small()
    };

    let vectors: Vec<Vec<u64>> = SHARDS
        .iter()
        .map(|&s| {
            let mut emb =
                ForwardEmbedding::train_with_runtime(&db, actors, &cfg, 5, Runtime::new(s))
                    .unwrap();
            let mut db2 = db.clone();
            restore_journal(&mut db2, &journal).unwrap();
            emb.extend(&db2, ids["a5"], 11).unwrap();
            emb.embedding(ids["a5"])
                .unwrap()
                .iter()
                .map(|v| v.to_bits())
                .collect()
        })
        .collect();
    for (i, v) in vectors.iter().enumerate().skip(1) {
        assert_eq!(v, &vectors[0], "shards={}: extension diverged", SHARDS[i]);
    }
}

#[test]
fn cached_and_uncached_extension_are_bit_identical_across_shard_counts() {
    // Property (over several master seeds): the walk-distribution cache is
    // semantically invisible. A batch extension on the persistent cache
    // (warm from the first fact onwards) and per-fact solves on throwaway
    // caches produce bit-identical ϕ(f_new), at 1, 2, and 8 shards.
    use stembed::core::ExtendOptions;
    use stembed::runtime::derive_seed;

    let (db0, ids) = movies();
    let mut db = db0.clone();
    let j_a5 = cascade_delete(&mut db, ids["a5"], false).unwrap();
    let j_a3 = cascade_delete(&mut db, ids["a3"], false).unwrap();
    let actors = db.schema().relation_id("ACTORS").unwrap();
    let cfg = ForwardConfig {
        dim: 8,
        epochs: 4,
        nsamples: 25,
        ..ForwardConfig::small()
    };
    let new_facts = [ids["a3"], ids["a5"]];

    for master_seed in [3u64, 17, 99] {
        let run = |shards: usize, cached: bool| -> Vec<Vec<u64>> {
            let mut emb = ForwardEmbedding::train_with_runtime(
                &db,
                actors,
                &cfg,
                master_seed,
                Runtime::new(shards),
            )
            .unwrap();
            let mut db2 = db.clone();
            restore_journal(&mut db2, &j_a3).unwrap();
            restore_journal(&mut db2, &j_a5).unwrap();
            if cached {
                emb.extend_batch(&db2, &new_facts, master_seed ^ 0xbeef)
                    .unwrap();
                assert!(
                    emb.dist_cache().stats().hits > 0,
                    "the cached path must actually hit"
                );
            } else {
                for (i, &f) in new_facts.iter().enumerate() {
                    emb.extend_with(
                        &db2,
                        f,
                        derive_seed(master_seed ^ 0xbeef, i as u64),
                        ExtendOptions {
                            nnew_samples: None,
                            reuse_cache: false,
                        },
                    )
                    .unwrap();
                }
                assert!(emb.dist_cache().is_empty(), "uncached path kept entries");
            }
            new_facts
                .iter()
                .map(|&f| {
                    emb.embedding(f)
                        .unwrap()
                        .iter()
                        .map(|v| v.to_bits())
                        .collect()
                })
                .collect()
        };
        let base = run(1, true);
        for &shards in &SHARDS {
            for cached in [true, false] {
                if shards == 1 && cached {
                    continue; // that configuration *is* the baseline
                }
                assert_eq!(
                    run(shards, cached),
                    base,
                    "seed={master_seed} shards={shards} cached={cached} diverged"
                );
            }
        }
    }
}

#[test]
fn cache_survives_a_delete_restore_cycle_without_changing_results() {
    // Invalidation property: mutating the database between extensions
    // (delete → restore of an unrelated fact) must leave the final vector
    // exactly what a cold-cache solve computes.
    let (db0, ids) = movies();
    let mut db = db0.clone();
    let journal = cascade_delete(&mut db, ids["a5"], false).unwrap();
    let actors = db.schema().relation_id("ACTORS").unwrap();
    let cfg = ForwardConfig {
        dim: 8,
        epochs: 4,
        nsamples: 25,
        ..ForwardConfig::small()
    };
    let emb0 = ForwardEmbedding::train(&db, actors, &cfg, 5).unwrap();
    restore_journal(&mut db, &journal).unwrap();

    // Warm the cache, then run the db through a delete→restore cycle.
    let mut warm = emb0.clone();
    warm.extend(&db, ids["a5"], 11).unwrap();
    let j_m6 = cascade_delete(&mut db, ids["m6"], false).unwrap();
    restore_journal(&mut db, &j_m6).unwrap();
    warm.forget(ids["a5"]);
    warm.extend(&db, ids["a5"], 11).unwrap();

    let mut cold = emb0.clone();
    cold.extend(&db, ids["a5"], 11).unwrap();

    let a: Vec<u64> = warm
        .embedding(ids["a5"])
        .unwrap()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let b: Vec<u64> = cold
        .embedding(ids["a5"])
        .unwrap()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_eq!(a, b, "cycled warm cache diverged from cold solve");
    assert!(
        warm.dist_cache().stats().invalidations >= 1,
        "the cycle must have invalidated the cache"
    );
}

#[test]
fn node2vec_sgns_is_bit_identical_across_shard_counts() {
    let (db, _) = movies();
    let g = DbGraph::build(&db);
    let cfg = Node2VecConfig::small();
    let models: Vec<Node2VecModel> = SHARDS
        .iter()
        .map(|&s| Node2VecModel::train_with_runtime(g.graph(), &cfg, 42, Runtime::new(s)))
        .collect();
    for (i, m) in models.iter().enumerate().skip(1) {
        for node in g.graph().node_ids() {
            let a: Vec<u64> = models[0]
                .embedding(node)
                .iter()
                .map(|v| v.to_bits())
                .collect();
            let b: Vec<u64> = m.embedding(node).iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "shards={}: node {node:?} diverged", SHARDS[i]);
        }
    }
}

#[test]
fn node2vec_dynamic_extension_is_bit_identical_across_shard_counts() {
    let (db0, ids) = movies();
    let mut db = db0.clone();
    let journal = cascade_delete(&mut db, ids["c4"], false).unwrap();
    let results: Vec<Vec<u64>> = SHARDS
        .iter()
        .map(|&s| {
            let mut g = DbGraph::build(&db);
            let mut model = Node2VecModel::train_with_runtime(
                g.graph(),
                &Node2VecConfig::small(),
                9,
                Runtime::new(s),
            );
            let mut db2 = db.clone();
            restore_journal(&mut db2, &journal).unwrap();
            let new_nodes = g.extend_with_fact(&db2, ids["c4"]);
            model.extend(g.graph(), &new_nodes, 3);
            let node = g.fact_node(ids["c4"]).unwrap();
            model.embedding(node).iter().map(|v| v.to_bits()).collect()
        })
        .collect();
    for (i, v) in results.iter().enumerate().skip(1) {
        assert_eq!(
            v, &results[0],
            "shards={}: n2v extension diverged",
            SHARDS[i]
        );
    }
}

#[test]
fn walk_corpus_differs_across_seeds() {
    // Guard against the degenerate "determinism because nothing is random"
    // failure mode: different seeds must produce different corpora.
    let (db, _) = movies();
    let g = DbGraph::build(&db);
    let cfg = WalkConfig {
        walks_per_node: 12,
        walk_length: 10,
        ..Default::default()
    };
    let c1 = Walker::with_runtime(g.graph(), cfg.clone(), 1, Runtime::new(4)).corpus();
    let c2 = Walker::with_runtime(g.graph(), cfg, 2, Runtime::new(4)).corpus();
    assert_ne!(c1, c2);
    let _ = NodeId(0);
}
